#pragma once
#include <unordered_set>
namespace snoc {
struct Lookup {
    bool contains(int v) const { return kept_.count(v) != 0; }
    std::unordered_set<int> kept_;
};
}
