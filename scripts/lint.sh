#!/usr/bin/env bash
# Static-analysis entry point: snoc_lint (always; layering, registries,
# determinism, RNG discipline, header hygiene - see tools/snoc_lint/) +
# clang-tidy (when installed; the container ships gcc only, CI installs
# clang-tidy).
#
#   scripts/lint.sh [build-dir]
#
# The build dir is only needed for clang-tidy (compile_commands.json);
# configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here).
#
# Exit status is nonzero when either snoc_lint or clang-tidy reports
# findings; clang-tidy warnings are detected from its output because
# run-clang-tidy historically exits 0 on plain warnings, which let CI
# pass with real findings.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== snoc_lint =="
mkdir -p "$(dirname "${SNOC_LINT_SARIF:-build/snoc_lint.sarif}")"
python3 tools/snoc_lint --sarif-out "${SNOC_LINT_SARIF:-build/snoc_lint.sarif}"

if command -v clang-tidy >/dev/null 2>&1; then
    if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
        echo "clang-tidy: no ${BUILD_DIR}/compile_commands.json - configure first" >&2
        exit 1
    fi
    echo "== clang-tidy =="
    # First-party translation units straight from the compile database —
    # exactly the set the build compiles, with the flags it compiles them
    # under (generated headers, defines, include paths all correct), so a
    # TU the build system knows about cannot dodge the linter and a file
    # the build never compiles cannot break it.  Checks come from
    # .clang-tidy.
    mapfile -t sources < <(python3 - "${BUILD_DIR}" <<'PYEOF'
import json, os, sys
root = os.getcwd()
tus = set()
with open(os.path.join(sys.argv[1], "compile_commands.json")) as db:
    for entry in json.load(db):
        path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, root)
        # First-party code only: skip generated TUs and anything vendored
        # into the build tree (gtest, benchmark, ...).
        if rel.startswith(("src/", "bench/", "examples/", "tools/", "apps/")):
            tus.add(rel)
print("\n".join(sorted(tus)))
PYEOF
)
    if [[ ${#sources[@]} -eq 0 ]]; then
        echo "clang-tidy: no first-party TUs in ${BUILD_DIR}/compile_commands.json" >&2
        exit 1
    fi
    tidy_log="$(mktemp)"
    trap 'rm -f "${tidy_log}"' EXIT
    tidy_rc=0
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p "${BUILD_DIR}" "${sources[@]}" \
            2>&1 | tee "${tidy_log}" || tidy_rc=$?
    else
        clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}" \
            2>&1 | tee "${tidy_log}" || tidy_rc=$?
    fi
    # A finding is "file:line:col: warning|error: ... [check-name]".
    if grep -qE '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' "${tidy_log}"; then
        echo "lint: clang-tidy reported findings" >&2
        exit 1
    fi
    if [[ ${tidy_rc} -ne 0 ]]; then
        echo "lint: clang-tidy exited with status ${tidy_rc}" >&2
        exit "${tidy_rc}"
    fi
else
    echo "clang-tidy not installed - skipping (CI runs it)" >&2
fi

echo "lint: OK"
