#include "apps/mp3_app.hpp"

#include <gtest/gtest.h>

#include "apps/audio.hpp"

namespace snoc::apps {
namespace {

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.75;
    c.default_ttl = 30;
    return c;
}

Mp3Config small_mp3() {
    Mp3Config c;
    c.frame_samples = 64;
    c.frame_count = 6;
    c.frame_interval = 2;
    c.band_count = 8;
    c.frame_budget_bits = 400;
    c.reservoir_capacity = 800;
    return c;
}

TEST(ToneGenerator, DeterministicAndContinuous) {
    ToneGenerator a(AudioParams{}, 1), b(AudioParams{}, 1);
    const auto f1 = a.frame(64);
    const auto f2 = b.frame(64);
    EXPECT_EQ(f1, f2);
    // Continuity: two frames of 32 equal one frame of 64.
    ToneGenerator c(AudioParams{}, 1);
    auto g1 = c.frame(32);
    const auto g2 = c.frame(32);
    g1.insert(g1.end(), g2.begin(), g2.end());
    EXPECT_EQ(g1, f1);
}

TEST(ToneGenerator, SamplesStayInRange) {
    ToneGenerator gen(AudioParams{}, 5);
    for (double s : gen.frame(4096)) {
        EXPECT_GE(s, -1.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(Mp3Noc, FaultFreeEncodingCompletes) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 1);
    const auto cfg = small_mp3();
    auto& output = deploy_mp3(net, cfg);
    const auto result = net.run_until([&output] { return output.complete(); }, 500);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(output.frames_received(), cfg.frame_count);
    EXPECT_EQ(output.frames_skipped(), 0u);
    EXPECT_GT(output.total_coded_bits(), 0u);
    ASSERT_TRUE(output.completion_round().has_value());
}

TEST(Mp3Noc, EmissionLogIsMonotone) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 2);
    auto& output = deploy_mp3(net, small_mp3());
    net.run_until([&output] { return output.complete(); }, 500);
    const auto& log = output.emission_log();
    ASSERT_FALSE(log.empty());
    for (std::size_t i = 1; i < log.size(); ++i) {
        EXPECT_GE(log[i].first, log[i - 1].first);
        EXPECT_GT(log[i].second, log[i - 1].second);
    }
    EXPECT_EQ(log.back().second, output.total_coded_bits());
}

TEST(Mp3Noc, CodedSizeRespectsBudgetPlusReservoir) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 3);
    const auto cfg = small_mp3();
    auto& output = deploy_mp3(net, cfg);
    net.run_until([&output] { return output.complete(); }, 500);
    // Total coded payload can't exceed frames * budget + reservoir.
    EXPECT_LE(output.total_coded_bits(),
              cfg.frame_count * cfg.frame_budget_bits + cfg.reservoir_capacity +
                  // payload framing overhead (headers + scales) per frame:
                  cfg.frame_count * (4 + 4 + 4 + cfg.band_count * 4 + 4 + 4) * 8);
}

TEST(Mp3Noc, UpsetsDelayCompletion) {
    const auto cfg = small_mp3();
    GossipNetwork clean(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 4);
    auto& out_clean = deploy_mp3(clean, cfg);
    const auto clean_run =
        clean.run_until([&out_clean] { return out_clean.complete(); }, 3000);

    FaultScenario s;
    s.p_upset = 0.6;
    GossipConfig gc = default_config();
    gc.default_ttl = 60;
    GossipNetwork dirty(Topology::mesh(4, 4), gc, s, 4);
    auto& out_dirty = deploy_mp3(dirty, cfg);
    const auto dirty_run =
        dirty.run_until([&out_dirty] { return out_dirty.complete(); }, 3000);

    ASSERT_TRUE(clean_run.completed);
    ASSERT_TRUE(dirty_run.completed);
    EXPECT_GT(dirty_run.rounds, clean_run.rounds);
}

TEST(Mp3Noc, StreamingModeSkipsUndeliverableFrames) {
    // Crash the MDCT tile: no frame can ever be encoded; streaming mode
    // must skip them all instead of stalling.
    Mp3Config cfg = small_mp3();
    cfg.skip_after_rounds = 10;
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 5);
    Mp3Deployment map;
    auto& output = deploy_mp3(net, cfg, map);
    for (TileId t = 0; t < 16; ++t)
        if (t != map.mdct) net.protect(t);
    net.force_exact_tile_crashes(1);
    const auto result = net.run_until([&output] { return output.complete(); }, 2000);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(output.frames_received(), 0u);
    EXPECT_EQ(output.frames_skipped(), cfg.frame_count);
}

TEST(Mp3Noc, StrictModeStallsOnLostStage) {
    Mp3Config cfg = small_mp3();
    cfg.skip_after_rounds = 0; // strict
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 6);
    Mp3Deployment map;
    auto& output = deploy_mp3(net, cfg, map);
    for (TileId t = 0; t < 16; ++t)
        if (t != map.mdct) net.protect(t);
    net.force_exact_tile_crashes(1);
    const auto result = net.run_until([&output] { return output.complete(); }, 300);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(output.frames_received(), 0u);
}

TEST(Mp3Noc, BitrateReportBasics) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 7);
    const auto cfg = small_mp3();
    auto& output = deploy_mp3(net, cfg);
    const auto run = net.run_until([&output] { return output.complete(); }, 500);
    const double tr = net.config().timing.round_seconds();
    const auto report = bitrate_report(output, cfg, run.rounds, tr);
    EXPECT_DOUBLE_EQ(report.completion_fraction, 1.0);
    EXPECT_GT(report.mean_bits_per_second, 0.0);
    EXPECT_NEAR(report.mean_bits_per_second,
                static_cast<double>(output.total_coded_bits()) /
                    (static_cast<double>(run.rounds) * tr),
                1e-6);
}

TEST(Mp3Noc, HeavyOverflowDegradesGracefullyInStreamingMode) {
    Mp3Config cfg = small_mp3();
    cfg.skip_after_rounds = 15;
    FaultScenario s;
    s.p_overflow = 0.5;
    GossipConfig gc = default_config();
    gc.default_ttl = 40;
    GossipNetwork net(Topology::mesh(4, 4), gc, s, 8);
    auto& output = deploy_mp3(net, cfg);
    const auto result = net.run_until([&output] { return output.complete(); }, 3000);
    EXPECT_TRUE(result.completed);
    // Gossip redundancy still gets most frames through 50% drops.
    EXPECT_GT(output.frames_received(), 0u);
}

TEST(Mp3Noc, SynchronisationErrorsDoNotPreventTermination) {
    FaultScenario s;
    s.sigma_synchr = 0.5;
    GossipNetwork net(Topology::mesh(4, 4), default_config(), s, 9);
    auto& output = deploy_mp3(net, small_mp3());
    const auto result = net.run_until([&output] { return output.complete(); }, 2000);
    EXPECT_TRUE(result.completed);
}

} // namespace
} // namespace snoc::apps
