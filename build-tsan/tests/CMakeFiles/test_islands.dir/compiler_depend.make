# Empty compiler generated dependencies file for test_islands.
# This may be replaced when dependencies are built.
