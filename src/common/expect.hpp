// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations throw so
// tests can assert on them and simulations fail loudly instead of
// propagating garbage.
#pragma once

#include <stdexcept>
#include <string>

namespace snoc {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                            file + ":" + std::to_string(line));
}
} // namespace detail

} // namespace snoc

// Preconditions on function arguments / object state on entry.
#define SNOC_EXPECT(cond)                                                         \
    do {                                                                          \
        if (!(cond)) ::snoc::detail::contract_fail("precondition", #cond,         \
                                                   __FILE__, __LINE__);           \
    } while (false)

// Postconditions / invariants on exit.
#define SNOC_ENSURE(cond)                                                         \
    do {                                                                          \
        if (!(cond)) ::snoc::detail::contract_fail("postcondition", #cond,        \
                                                   __FILE__, __LINE__);           \
    } while (false)
