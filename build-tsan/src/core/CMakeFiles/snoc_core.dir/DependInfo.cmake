
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/snoc_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/snoc_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/snoc_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/snoc_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/gossip_statechart.cpp" "src/core/CMakeFiles/snoc_core.dir/gossip_statechart.cpp.o" "gcc" "src/core/CMakeFiles/snoc_core.dir/gossip_statechart.cpp.o.d"
  "/root/repo/src/core/send_buffer.cpp" "src/core/CMakeFiles/snoc_core.dir/send_buffer.cpp.o" "gcc" "src/core/CMakeFiles/snoc_core.dir/send_buffer.cpp.o.d"
  "/root/repo/src/core/transport.cpp" "src/core/CMakeFiles/snoc_core.dir/transport.cpp.o" "gcc" "src/core/CMakeFiles/snoc_core.dir/transport.cpp.o.d"
  "/root/repo/src/core/tuning.cpp" "src/core/CMakeFiles/snoc_core.dir/tuning.cpp.o" "gcc" "src/core/CMakeFiles/snoc_core.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/snoc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/snoc_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/snoc_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/snoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
