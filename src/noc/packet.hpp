// On-chip packets and their wire representation.
//
// Messages are the unit the gossip algorithm manipulates (Fig. 3-4);
// Packets are the serialised bits that traverse a link and that data
// upsets corrupt.  Corruption is applied to real bytes and detected by the
// real CRC, so the (tiny) undetected-error path exists in code exactly as
// it would on silicon.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace snoc {

/// Destination value meaning "broadcast: every tile is interested".
inline constexpr TileId kBroadcast = kNoTile;

/// Framing cost of one packet: header (origin, seq, src, dst, tag, ttl,
/// payload length) plus the trailing CRC-32.  Any medium carrying a
/// message pays this overhead on top of the payload.
inline constexpr std::size_t kWireOverheadBytes = 26 + 4;

/// An application-level message travelling through the NoC.
struct Message {
    MessageId id{};           ///< (origin, sequence) — unique network-wide.
    TileId source{0};         ///< tile that created the message.
    TileId destination{0};    ///< tile whose IP should consume it (or kBroadcast).
    std::uint32_t tag{0};     ///< application-defined type discriminator.
    std::uint16_t ttl{0};     ///< remaining hops before garbage collection.
    std::vector<std::byte> payload;

    /// Two messages are "the same rumor" iff their ids match; the
    /// send-buffer dedups on this (Sec. 3.2.3).
    friend bool operator==(const Message& a, const Message& b) {
        return a.id == b.id && a.source == b.source &&
               a.destination == b.destination && a.tag == b.tag &&
               a.payload == b.payload;
    }
};

/// Serialised form: header + payload + trailing CRC-32.
class Packet {
public:
    /// Serialise a message (computes and appends the CRC).
    static Packet encode(const Message& m);

    /// Construct from raw wire bytes (e.g. after corruption).
    static Packet from_wire(std::vector<std::byte> wire);

    /// CRC check: true iff the trailing CRC matches the content.
    bool crc_ok() const;

    /// Deserialise; nullopt if the CRC fails or the framing is invalid.
    /// (Fig. 3-4: send_buffer <- {m received | CRC_OK(m)}.)
    std::optional<Message> decode() const;

    /// Same checks straight off raw wire bytes — the receive path decodes
    /// a wire image shared by several transmissions without constructing
    /// (and copying into) a Packet first.
    static bool crc_ok_wire(std::span<const std::byte> wire);
    static std::optional<Message> decode_wire(std::span<const std::byte> wire);

    /// Size on the wire, in bits — the S of Eq. 2/3.
    std::size_t bit_size() const { return wire_.size() * 8; }
    std::size_t byte_size() const { return wire_.size(); }

    const std::vector<std::byte>& wire() const { return wire_; }
    std::vector<std::byte>& mutable_wire() { return wire_; }

private:
    explicit Packet(std::vector<std::byte> wire) : wire_(std::move(wire)) {}
    std::vector<std::byte> wire_;
};

} // namespace snoc
