// Deterministic, splittable random number streams.
//
// Every stochastic decision in the simulator (per-link Bernoulli forwarding,
// fault injection, clock jitter, workload generation) draws from a stream
// derived from a root seed plus a purpose key, so that
//   * two runs with the same seed are bit-identical, and
//   * changing one consumer's draw count does not perturb the others.
//
// The thesis realises the Bernoulli(p) gate with an amplified-thermal-noise
// circuit (Sec. 3.2.3); this is its deterministic functional equivalent.
//
// Draw-sequence contract (v2): bernoulli(), below() and uniform() map
// raw mt19937_64 words directly instead of going through the standard
// <random> distribution adaptors, because the engine's forward phase
// calls bernoulli() once per output port per held message per round and
// constructing a distribution object per call dominated that hot path.
//   * bernoulli(p): one engine word compared against a cached 64-bit
//     threshold (zero words for p <= 0 or p >= 1);
//   * below(b): one engine word reduced mod b, with Lemire-style
//     rejection of the top `2^64 mod b` slice to stay exactly unbiased
//     (extra words only on rejection, probability < b / 2^64);
//   * uniform(): the top 53 bits of one engine word scaled by 2^-53;
//   * normal() still uses std::normal_distribution (cold path: clock
//     jitter only) — its per-call construction is documented, not a bug:
//     the distribution caches a second Box-Muller variate that would go
//     stale across calls with different (mean, stddev) parameters.
// Any change to these mappings shifts every downstream stochastic
// trajectory; tests assert distributions and determinism, never exact
// sequences, so the mappings may evolve — but bump this note when they do.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>

namespace snoc {

/// splitmix64: tiny, high-quality 64-bit mixer used for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Combine a seed with a sequence of 64-bit keys into a derived seed.
constexpr std::uint64_t derive_seed(std::uint64_t root, std::uint64_t key) {
    return splitmix64(root ^ splitmix64(key));
}

/// Hash a short string key (stream purpose name) to 64 bits (FNV-1a).
constexpr std::uint64_t key_of(std::string_view name) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// A single random stream.  Thin wrapper over mt19937_64 with the
/// distributions the simulator needs.
class RngStream {
public:
    explicit RngStream(std::uint64_t seed) : engine_(seed) {}

    /// Bernoulli trial: true with probability p (p clamped to [0,1]).
    /// The engine's hottest draw: a raw engine word against a cached
    /// threshold of p * 2^64, recomputed only when p changes (the
    /// forward gate calls this with the same p for a whole run).
    bool bernoulli(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        if (p != bernoulli_p_) {
            bernoulli_p_ = p;
            // p < 1 here, so ldexp(p, 64) < 2^64 and the cast is safe.
            bernoulli_threshold_ = static_cast<std::uint64_t>(std::ldexp(p, 64));
        }
        return engine_() < bernoulli_threshold_;
    }

    /// Uniform integer in [0, bound) — bound must be > 0.  Unbiased:
    /// the low `2^64 mod bound` slice of engine words is rejected.
    std::uint64_t below(std::uint64_t bound) {
        const std::uint64_t reject = (std::uint64_t{0} - bound) % bound; // 2^64 mod bound
        for (;;) {
            const std::uint64_t r = engine_();
            if (r >= reject) return r % bound;
        }
    }

    /// Uniform double in [0, 1): top 53 bits of one engine word.
    double uniform() {
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /// Normal draw.
    double normal(double mean, double stddev) {
        if (stddev <= 0.0) return mean;
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Raw 64 random bits.
    std::uint64_t bits() { return engine_(); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
    double bernoulli_p_{-1.0};
    std::uint64_t bernoulli_threshold_{0};
};

/// Factory for named sub-streams of a root seed.
class RngPool {
public:
    explicit RngPool(std::uint64_t root_seed) : root_(root_seed) {}

    std::uint64_t root_seed() const { return root_; }

    /// Stream for a (purpose, index) pair, e.g. ("forward", tile id).
    RngStream stream(std::string_view purpose, std::uint64_t index = 0) const {
        return RngStream(derive_seed(derive_seed(root_, key_of(purpose)), index));
    }

private:
    std::uint64_t root_;
};

} // namespace snoc
