# Empty dependencies file for test_broadcast_tree.
# This may be replaced when dependencies are built.
