// The stochastic communication engine — the paper's primary contribution
// (Sec. 3.2, Fig. 3-4).  One GossipNetwork owns a topology, per-tile
// network logic (send buffer, input buffers, CRC filter, Bernoulli(p)
// output gates), the fault injector and the GALS clock model, and executes
// gossip rounds:
//
//   receive:  send_buffer U= { m received | CRC_OK(m) }   (dedup by id)
//   deliver:  m.destination == tile  ->  IP core
//   compute:  IP may inject new messages
//   forward:  every held m goes out on each live port w.p. p
//   age:      for all m: TTL -= 1;  drop TTL == 0
//
// Crashed tiles/links, data upsets, forced overflows and clock-skew
// deferrals are applied exactly where they would strike on silicon.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "check/ledger.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/gossip_config.hpp"
#include "core/ip_core.hpp"
#include "core/metrics.hpp"
#include "core/send_buffer.hpp"
#include "fault/injector.hpp"
#include "noc/topology.hpp"
#include "sim/round_clock.hpp"
#include "sim/trace.hpp"

namespace snoc {

class EventEngine;

class GossipNetwork {
public:
    /// `engine` picks the round executor: the default lockstep engine
    /// walks every tile every round; EngineKind::Event delegates rounds
    /// to the sparse-activity EventEngine (core/event_engine.hpp), which
    /// produces bit-identical metrics, traces and clocks for any shard
    /// count (test_engine_equivalence proves it).
    GossipNetwork(Topology topology, GossipConfig config, FaultScenario scenario,
                  std::uint64_t seed, EngineSelect engine = {});
    ~GossipNetwork();

    /// Map an IP core onto a tile.  Must be called before the first round.
    void attach(TileId tile, std::unique_ptr<IpCore> core);

    /// Tiles that must survive the initial crash roll (e.g. the unique
    /// master); call before the first round.
    void protect(TileId tile);

    /// Crash exactly `k` unprotected tiles instead of rolling p_tiles
    /// (the Fig. 4-4 x-axis is a defect count).  Call before round 0.
    void force_exact_tile_crashes(std::size_t k);

    /// Limit how many packet transmissions a tile may perform per round.
    /// Models serialised media in the Ch. 5 hybrid architectures: a
    /// bus-bridge tile that can push one packet per round behaves like a
    /// shared bus between sub-networks.  Default: unlimited.
    void set_forward_capacity(TileId tile, std::size_t packets_per_round);

    /// Gate which messages a tile may forward to which neighbour.  This is
    /// how the Ch. 5 central router / bus bridge confines gossip to the
    /// destination's cluster: plain mesh tiles have no filter, gateway and
    /// hub tiles forward a rumor off-cluster only when its destination
    /// lives there.  Returning false suppresses that port for that message.
    using RouteFilter = std::function<bool(const Message&, TileId next_hop)>;
    void set_route_filter(TileId tile, RouteFilter filter);

    /// Voltage/frequency islands (Ch. 5): a tile with clock scale s >= 1
    /// runs its rounds s times slower than the base T_R — it participates
    /// only in the engine rounds its local clock has caught up with, so a
    /// scale-2 tile acts every other round, holds its rumors twice as long
    /// in wall-clock, and receives arrivals with a deferral.  Scales below
    /// 1 clamp to 1 (the engine round is the fastest quantum).  Call
    /// before round 0.
    void set_clock_scale(TileId tile, double scale);

    /// Attach a flight recorder (see sim/trace.hpp).  The sink must
    /// outlive the network; nullptr detaches.  Tracing never changes
    /// behaviour — sinks are write-only observers.
    void set_trace_sink(TraceSink* sink) { trace_ = sink; }

    struct RunResult {
        bool completed{false};    ///< predicate became true before the cap.
        Round rounds{0};          ///< rounds executed.
        double elapsed_seconds{0.0};
    };

    /// Run until `done()` (checked after every round) or `max_rounds`.
    RunResult run_until(const std::function<bool()>& done, Round max_rounds);

    /// Execute a single gossip round.
    void step();

    /// --- Observers --------------------------------------------------------
    const Topology& topology() const { return topology_; }
    const GossipConfig& config() const { return config_; }
    const NetworkMetrics& metrics() const { return metrics_; }
    const CrashState& crashes();
    Round round() const { return round_; }
    double elapsed_seconds() const;
    /// Which engine executes rounds (EngineSelect at construction).
    EngineKind engine_kind() const;
    /// Event engine only: true iff its active-tile set equals the set of
    /// live tiles with non-empty send buffers (the invariant that makes
    /// skipping sound).  Always true under lockstep.  O(N); the
    /// InvariantAuditor calls it per audited round.
    bool event_active_set_consistent() const;

    bool tile_alive(TileId t);
    std::size_t live_link_count();

    /// True when no rumor is alive anywhere: all send buffers are empty
    /// and nothing is in flight.  Energy measurements should run to
    /// quiescence — transmissions keep burning energy until every TTL
    /// expires, even after the application has finished.
    bool quiescent() const;

    /// Step until quiescent (or the safety cap); used by the energy
    /// benches to account for the full broadcast lifetime.
    void drain(Round max_extra_rounds = 1000);
    /// How many live tiles currently know (hold or held) message `id` —
    /// the spread curve of Fig. 3-1.
    std::size_t tiles_knowing(const MessageId& id);
    const SendBuffer& send_buffer(TileId t) const;

    /// Packets enqueued on links but not yet received (all ring buckets).
    std::size_t in_flight_packets() const;

    /// Snapshot the conservation ledger (check/ledger.hpp) from live
    /// engine state.  Exact at any round boundary; the InvariantAuditor
    /// verifies its two balance laws per round and at end of run.
    check::ConservationLedger ledger() const;

private:
    /// One packet in flight.  All clean transmissions of a message in a
    /// round share a single encoded wire image (encode-once forward
    /// path); an upset transmission owns a corrupted copy of the bytes.
    struct Arrival {
        std::shared_ptr<const std::vector<std::byte>> wire;
        bool corrupted{false};
    };

    struct Tile {
        SendBuffer send_buffer;
        std::uint32_t next_sequence{0};
        std::size_t inbox_backlog{0}; ///< arrivals queued, for capacity drops.
        std::unique_ptr<IpCore> core;
        explicit Tile(std::size_t cap) : send_buffer(cap) {}
    };

    class Context; // TileContext implementation.

    /// Effect sink for one delivery / compute call: where scalar
    /// counters, trace events and bookkeeping side-effects land.  The
    /// lockstep engine points it straight at metrics_ / trace_; the event
    /// engine hands per-shard sinks so parallel shards never write shared
    /// state (deltas are merged serially, in ascending shard order, at
    /// phase end — which keeps results byte-identical at any shard
    /// count).
    struct StepSink {
        NetworkMetrics* metrics{nullptr};  ///< scalar counter target.
        TraceSink* direct_trace{nullptr};  ///< emit here when not buffering.
        std::vector<TraceEvent>* trace_buffer{nullptr}; ///< shard buffer.
        bool tracing{false};               ///< any trace destination is on.
        /// nullptr: stop-spread ids go straight into delivered_unicasts_.
        std::vector<MessageId>* unicasts{nullptr};
        /// Event-engine bookkeeping (all nullptr under lockstep): ids
        /// successfully inserted into send buffers (knower accounting),
        /// tiles whose buffer went empty -> non-empty (active-set
        /// maintenance), and how many insertions evicted a victim.
        std::vector<MessageId>* inserted{nullptr};
        std::vector<TileId>* activated{nullptr};
        std::size_t evictions{0};
    };
    /// The lockstep sink: counters to metrics_, events to trace_.
    StepSink direct_sink();

    void ensure_started();
    bool tile_active_this_round(TileId t) const;
    void receive_phase();
    void compute_phase();
    void forward_phase();
    void age_phase();
    void advance_clocks();
    void deliver_and_insert(TileId tile, Message message, StepSink& sink);
    /// Run `tile`'s IP core hook with a Context wired to `sink`.
    void core_round(TileId tile, StepSink& sink);
    /// Serialise + CRC (+ optional FEC) a message into a shareable wire image.
    std::shared_ptr<const std::vector<std::byte>> encode_message(const Message& m) const;
    void enqueue_transmission(TileId from, TileId to, LinkId link, MessageId id,
                              std::shared_ptr<const std::vector<std::byte>> wire);
    void trace(TraceEventKind kind, TileId tile, TileId peer = kNoTile,
               MessageId message = MessageId{kNoTile, 0});
    void sink_trace(StepSink& sink, TraceEventKind kind, TileId tile,
                    TileId peer = kNoTile, MessageId message = MessageId{kNoTile, 0});

    Topology topology_;
    GossipConfig config_;
    RngPool pool_;
    FaultInjector injector_;
    GalsClocks clocks_;

    std::vector<Tile> tiles_;
    std::vector<RngStream> forward_rng_;
    std::vector<RngStream> app_rng_;
    std::vector<std::size_t> forward_capacity_;
    std::vector<RouteFilter> route_filter_;
    std::vector<double> clock_scale_;
    std::vector<double> next_action_round_;
    std::vector<TileId> protected_tiles_;
    CrashState crash_state_;
    bool started_{false};
    std::optional<std::size_t> forced_exact_crashes_;

    Round round_{0};
    // Rumors whose destination already has them (only tracked when
    // config_.stop_spread_on_delivery is set).
    std::unordered_set<MessageId> delivered_unicasts_;
    // Arrivals bucketed by arrival round, per destination tile.  A packet
    // sent in round r lands at r+1, or r+2 after a skew deferral, and a
    // slow-clock receive defers at most one round at a time — so a small
    // ring of reusable buckets replaces the old unordered_map<Round, ...>
    // (no hashing, no rehash, vector capacity survives across rounds).
    static constexpr std::size_t kInFlightRing = 4;
    std::array<std::vector<std::pair<TileId, Arrival>>, kInFlightRing> in_flight_;
    std::vector<std::pair<TileId, Arrival>> arrivals_scratch_;
    NetworkMetrics metrics_;
    std::size_t packets_this_round_{0};
    std::size_t sendbuf_overflow_snapshot_{0};
    TraceSink* trace_{nullptr};
    /// Non-null iff constructed with EngineKind::Event; owns the sparse
    /// round executor, which reaches back in through the friendship below.
    std::unique_ptr<EventEngine> event_;

    friend class EventEngine;
};

} // namespace snoc
