// Flow-control ablation: the packet-switched zoo on the Fig. 4-6
// workload (Master-Slave pi scatter/gather, wire-framed packets, 0.25um
// technology).  One row per backend x fault scenario:
//
//   xy            hop-count strawman (no cycle-time model)
//   wormhole      flit streaming through per-port VCs
//   deflection    bufferless hot-potato
//   store-forward router core, whole packets per hop
//   cut-through   router core, header switched ahead of the tail
//   adaptive      router core, cut-through + fault-adaptive detours
//
// Expected shape: cut-through's latency beats store-and-forward by
// roughly the hop count (pipelining), and under tile crashes the
// adaptive policy's completion rate stays above the dimension-ordered
// schemes, at a modest detour-energy premium.  scripts/bench_snapshot.sh
// records this table as BENCH_router.json.
#include <iostream>

#include "bench_util.hpp"
#include "noc/packet.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 3);
    const auto tech = Technology::cmos_025um();

    auto trace = apps::pi_trace(apps::PiDeployment{});
    // The pi deployment is compact (master ringed by its slaves), so a
    // corner-exchange phase adds the long-haul routes whose middle tiles
    // are unprotected — the paths the fault scenario can actually cut.
    TrafficPhase corners;
    corners.messages.push_back({0, 24, 256});
    corners.messages.push_back({4, 20, 256});
    corners.messages.push_back({20, 4, 256});
    corners.messages.push_back({24, 0, 256});
    trace.phases.push_back(corners);
    const std::size_t useful = trace.useful_bits();
    // Fair framing, as in fig4_6: packets carry header + CRC on the wire.
    std::vector<TileId> endpoints;
    for (auto& phase : trace.phases)
        for (auto& m : phase.messages) {
            m.bits += kWireOverheadBytes * 8;
            endpoints.push_back(m.src);
            endpoints.push_back(m.dst);
        }

    constexpr BackendKind kKinds[] = {
        BackendKind::Xy,           BackendKind::Wormhole,
        BackendKind::Deflection,   BackendKind::StoreForward,
        BackendKind::CutThrough,   BackendKind::Adaptive,
    };
    constexpr std::size_t kKindCount = std::size(kKinds);

    const auto make_backend = [&](BackendKind kind, const FaultScenario& scenario,
                                  std::uint64_t seed) -> std::unique_ptr<Interconnect> {
        // The trace endpoints are protected (as every fig4_6-style bench
        // protects its deployment), so a crashed middle is what the
        // schemes differ on — not a dead master.
        switch (kind) {
        case BackendKind::Xy: {
            XySpec spec;
            spec.protect = endpoints;
            return std::make_unique<XyAdapter>(std::move(spec), scenario, seed);
        }
        case BackendKind::Wormhole: {
            WormholeSpec spec;
            spec.protect = endpoints;
            return std::make_unique<WormholeAdapter>(std::move(spec), scenario, seed);
        }
        case BackendKind::Deflection: {
            DeflectionSpec spec;
            spec.protect = endpoints;
            return std::make_unique<DeflectionAdapter>(std::move(spec), scenario,
                                                       seed);
        }
        case BackendKind::StoreForward: {
            StoreForwardSpec spec;
            spec.protect = endpoints;
            return std::make_unique<StoreForwardAdapter>(std::move(spec), scenario,
                                                         seed);
        }
        case BackendKind::CutThrough: {
            CutThroughSpec spec;
            spec.protect = endpoints;
            return std::make_unique<CutThroughAdapter>(std::move(spec), scenario,
                                                       seed);
        }
        default: {
            AdaptiveSpec spec;
            spec.protect = endpoints;
            return std::make_unique<AdaptiveAdapter>(std::move(spec), scenario, seed);
        }
        }
    };

    Table table({"backend", "faults", "completion", "cycles", "latency [us]",
                 "hops", "energy [J/bit]"});

    const FaultScenario healthy = FaultScenario::none();
    FaultScenario crashy;
    crashy.p_tiles = 0.1;

    for (const bool faulted : {false, true}) {
        const FaultScenario& scenario = faulted ? crashy : healthy;
        ExperimentSpec spec;
        spec.name = faulted ? "flow-control faulted" : "flow-control healthy";
        spec.axes = {{"backend", [] {
                          std::vector<double> v;
                          for (std::size_t i = 0; i < kKindCount; ++i)
                              v.push_back(static_cast<double>(i));
                          return v;
                      }()}};
        spec.repeats = opt.repeats;
        spec.base_seed = opt.seed;
        spec.jobs = opt.jobs;
        spec.max_rounds = 20000;
        spec.audit = true;
        spec.backend = [&](const SweepPoint& pt, std::uint64_t seed) {
            return make_backend(kKinds[pt.index_of("backend")], scenario, seed);
        };
        spec.trace = [&](const SweepPoint&) { return trace; };

        for (const CellResult& cell : ScenarioRunner(spec).run()) {
            const BackendKind kind = kKinds[cell.point.index_of("backend")];
            const CellStats& s = cell.stats;
            if (s.audit_violations != 0) {
                std::cerr << to_string(kind) << ": " << s.audit_violations
                          << " audit violation(s)\n";
                return 1;
            }
            const double jpb = bench::joules_per_useful_bit(s.bits, useful);
            // One link carries one flit per cycle; seconds come straight
            // from the adapters' cycle-time models (0 for xy, which has
            // no clock beyond hops).
            table.add_row({std::string(to_string(kind)),
                           faulted ? "p_tiles=0.1" : "none",
                           format_number(s.completion_rate, 2),
                           format_number(s.rounds, 1),
                           format_number(s.seconds * 1e6, 3),
                           format_number(s.transmissions, 1),
                           format_sci(jpb, 2)});
        }
    }

    bench::emit(table, opt,
                "Flow-control schemes on the fig4_6 pi workload");
    return 0;
}
