#include "sim/statechart.hpp"

#include <algorithm>

namespace snoc::sc {

StateId Statechart::add_state(std::string name, Composition composition,
                              StateId parent) {
    SNOC_EXPECT(!started_);
    const StateId id = states_.size();
    State s;
    s.name = std::move(name);
    s.composition = composition;
    s.parent = parent;
    if (parent == kNoState) {
        SNOC_EXPECT(root_ == kNoState); // single root
        root_ = id;
    } else {
        SNOC_EXPECT(parent < states_.size());
        SNOC_EXPECT(states_[parent].composition != Composition::Leaf);
        states_[parent].children.push_back(id);
    }
    states_.push_back(std::move(s));
    active_.push_back(false);
    return id;
}

void Statechart::set_initial(StateId composite, StateId child) {
    SNOC_EXPECT(!started_);
    SNOC_EXPECT(composite < states_.size());
    SNOC_EXPECT(child < states_.size());
    SNOC_EXPECT(states_[child].parent == composite);
    SNOC_EXPECT(states_[composite].composition == Composition::Exclusive);
    states_[composite].initial = child;
}

void Statechart::on_entry(StateId state, std::function<void()> hook) {
    SNOC_EXPECT(state < states_.size());
    states_[state].entry = std::move(hook);
}

void Statechart::on_exit(StateId state, std::function<void()> hook) {
    SNOC_EXPECT(state < states_.size());
    states_[state].exit = std::move(hook);
}

void Statechart::add_transition(Transition transition) {
    SNOC_EXPECT(!started_);
    SNOC_EXPECT(transition.from < states_.size());
    SNOC_EXPECT(transition.to < states_.size());
    transitions_.push_back(std::move(transition));
}

void Statechart::enter(StateId id) {
    SNOC_EXPECT(!active_[id]);
    active_[id] = true;
    const State& s = states_[id];
    if (s.entry) s.entry();
    switch (s.composition) {
    case Composition::Leaf:
        break;
    case Composition::Exclusive: {
        SNOC_EXPECT(s.initial != kNoState); // configured via set_initial
        enter(s.initial);
        break;
    }
    case Composition::Parallel:
        for (StateId child : s.children) enter(child);
        break;
    }
}

void Statechart::exit(StateId id) {
    if (!active_[id]) return;
    // Children exit first (inner-to-outer).
    for (StateId child : states_[id].children) exit(child);
    active_[id] = false;
    if (!exited_mark_.empty()) exited_mark_[id] = true;
    if (states_[id].exit) states_[id].exit();
}

void Statechart::start() {
    SNOC_EXPECT(!started_);
    SNOC_EXPECT(root_ != kNoState);
    // Validate before committing: every exclusive composite needs an
    // initial child, so a failed start leaves the chart untouched.
    for (const State& s : states_) {
        if (s.composition == Composition::Exclusive)
            SNOC_EXPECT(s.initial != kNoState && !s.children.empty());
        if (s.composition != Composition::Leaf) SNOC_EXPECT(!s.children.empty());
    }
    started_ = true;
    enter(root_);
}

void Statechart::post(Event event) { queue_.push(event); }

bool Statechart::is_ancestor(StateId maybe_ancestor, StateId state) const {
    for (StateId cur = state; cur != kNoState; cur = states_[cur].parent)
        if (cur == maybe_ancestor) return true;
    return false;
}

StateId Statechart::lca(StateId a, StateId b) const {
    for (StateId cur = states_[a].parent; cur != kNoState; cur = states_[cur].parent)
        if (is_ancestor(cur, b)) return cur;
    return root_;
}

bool Statechart::fire_first_matching(const Event& event, std::vector<bool>& fired,
                                     const std::vector<bool>& snapshot) {
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
        const auto& t = transitions_[i];
        if (fired[i]) continue; // at most one firing per event (no livelock)
        if (t.trigger != event.id) continue;
        // Eligibility is judged against the configuration at event receipt
        // (states entered *during* this event don't react to it), against
        // the live configuration, and each region fires at most once.
        if (!snapshot[t.from] || !active_[t.from] || exited_mark_[t.from]) continue;
        if (t.guard && !t.guard(event)) {
            // Guards are evaluated at most once per event (they may have
            // side effects, e.g. the Bernoulli RND draw of Fig. 3-5).
            fired[i] = true;
            continue;
        }
        fired[i] = true;
        // Exit up to (excluding) the LCA, run the action, enter the target.
        const StateId pivot = lca(t.from, t.to);
        // Exit the child-of-pivot subtree containing `from`.
        StateId exit_top = t.from;
        while (states_[exit_top].parent != pivot) exit_top = states_[exit_top].parent;
        exit(exit_top);
        if (t.action) t.action(event);
        // Enter the chain from below the pivot down to `to`.
        std::vector<StateId> chain;
        for (StateId cur = t.to; cur != pivot; cur = states_[cur].parent)
            chain.push_back(cur);
        std::reverse(chain.begin(), chain.end());
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            // Enter intermediate composites without their default initial
            // cascade when the chain pins the next child explicitly.
            StateId id = chain[i];
            SNOC_EXPECT(!active_[id]);
            active_[id] = true;
            if (states_[id].entry) states_[id].entry();
            if (states_[id].composition == Composition::Parallel) {
                for (StateId child : states_[id].children)
                    if (child != chain[i + 1]) enter(child);
            }
        }
        enter(chain.back());
        return true;
    }
    return false;
}

void Statechart::process() {
    SNOC_EXPECT(started_);
    if (processing_) return; // re-entrant dispatch from an action
    processing_ = true;
    while (!queue_.empty()) {
        const Event event = queue_.front();
        queue_.pop();
        // Run-to-completion: fire every enabled transition for this event,
        // each at most once (covers orthogonal regions without cascades or
        // livelock on self-loops).
        std::vector<bool> fired(transitions_.size(), false);
        const std::vector<bool> snapshot = active_;
        exited_mark_.assign(states_.size(), false);
        while (fire_first_matching(event, fired, snapshot)) {
        }
        exited_mark_.clear();
    }
    processing_ = false;
}

bool Statechart::in(StateId state) const {
    SNOC_EXPECT(state < states_.size());
    return active_[state];
}

const std::string& Statechart::name(StateId state) const {
    SNOC_EXPECT(state < states_.size());
    return states_[state].name;
}

std::vector<StateId> Statechart::active_leaves() const {
    std::vector<StateId> leaves;
    for (StateId id = 0; id < states_.size(); ++id)
        if (active_[id] && states_[id].composition == Composition::Leaf)
            leaves.push_back(id);
    return leaves;
}

} // namespace snoc::sc
