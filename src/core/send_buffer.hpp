// The send buffer of Fig. 3-5: the list of messages a tile has to forward.
// "If a message is already present, a duplicate message will not be
// inserted" — membership is by MessageId.  Capacity is finite; on overflow
// the oldest entry is dropped (Ch. 2 overflow policy).
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "noc/packet.hpp"

namespace snoc {

class SendBuffer {
public:
    explicit SendBuffer(std::size_t capacity);

    /// Insert unless a message with the same id is already held or was
    /// held before (no resurrection of garbage-collected rumors).
    /// Returns true iff inserted; bumps the overflow counter when the
    /// oldest entry had to be evicted to make room.  When `evicted` is
    /// non-null the victim's id is written there (for tracing); it is
    /// left untouched when nothing was evicted.
    bool insert(Message message, MessageId* evicted = nullptr);

    /// True iff this id is currently held *or was ever held* by this tile.
    bool knows(const MessageId& id) const { return known_.contains(id); }

    /// Decrement every held message's TTL; remove those reaching 0.
    /// Returns the number of expired messages (Fig. 3-4 GC step).  When
    /// `expired_ids` is non-null the collected rumor ids are appended
    /// (for tracing).
    std::size_t age_and_collect(std::vector<MessageId>* expired_ids = nullptr);

    std::size_t size() const { return messages_.size(); }
    bool empty() const { return messages_.empty(); }
    std::size_t capacity() const { return capacity_; }
    std::size_t overflow_drops() const { return overflow_drops_; }

    const std::vector<Message>& messages() const { return messages_; }

    /// Every id this tile has ever held (a superset of messages(): ids
    /// survive ageing and eviction).  The event engine's bootstrap counts
    /// knowers from it; iteration order is unspecified, so only
    /// order-insensitive accounting may read it.
    const std::unordered_set<MessageId>& known() const { return known_; }

    void clear();

private:
    std::size_t capacity_;
    std::vector<Message> messages_;
    std::unordered_set<MessageId> known_;
    std::size_t overflow_drops_{0};
};

} // namespace snoc
