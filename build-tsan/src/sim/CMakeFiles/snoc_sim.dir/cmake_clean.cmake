file(REMOVE_RECURSE
  "CMakeFiles/snoc_sim.dir/statechart.cpp.o"
  "CMakeFiles/snoc_sim.dir/statechart.cpp.o.d"
  "CMakeFiles/snoc_sim.dir/trace.cpp.o"
  "CMakeFiles/snoc_sim.dir/trace.cpp.o.d"
  "libsnoc_sim.a"
  "libsnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
