file(REMOVE_RECURSE
  "CMakeFiles/ablation_reliable_transport.dir/ablation_reliable_transport.cpp.o"
  "CMakeFiles/ablation_reliable_transport.dir/ablation_reliable_transport.cpp.o.d"
  "ablation_reliable_transport"
  "ablation_reliable_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reliable_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
