file(REMOVE_RECURSE
  "libsnoc_bus.a"
)
