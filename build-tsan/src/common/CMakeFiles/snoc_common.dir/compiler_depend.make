# Empty compiler generated dependencies file for snoc_common.
# This may be replaced when dependencies are built.
