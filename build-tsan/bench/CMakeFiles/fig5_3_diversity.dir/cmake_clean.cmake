file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_diversity.dir/fig5_3_diversity.cpp.o"
  "CMakeFiles/fig5_3_diversity.dir/fig5_3_diversity.cpp.o.d"
  "fig5_3_diversity"
  "fig5_3_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
