#include "energy/energy.hpp"

#include <gtest/gtest.h>

#include "sim/round_clock.hpp"

namespace snoc {
namespace {

TEST(Technology, PaperConstants) {
    const auto tech = Technology::cmos_025um();
    EXPECT_DOUBLE_EQ(tech.link_frequency_hz, 381e6);
    EXPECT_DOUBLE_EQ(tech.link_ebit_joules, 2.4e-10);
    EXPECT_DOUBLE_EQ(tech.bus_frequency_hz, 43e6);
    EXPECT_DOUBLE_EQ(tech.bus_ebit_joules, 21.6e-10);
}

TEST(NocEnergy, Eq3Arithmetic) {
    NetworkMetrics m;
    m.packets_sent = 100;
    m.bits_sent = 100 * 256; // S = 256 bits
    const auto report = noc_energy(m, Technology::cmos_025um(), 1e-5, 1000);
    // E = N * S * E_bit.
    EXPECT_DOUBLE_EQ(report.joules, 100.0 * 256.0 * 2.4e-10);
    EXPECT_DOUBLE_EQ(report.joules_per_useful_bit, report.joules / 1000.0);
    EXPECT_DOUBLE_EQ(report.seconds, 1e-5);
    EXPECT_DOUBLE_EQ(report.energy_delay_product,
                     report.joules_per_useful_bit * 1e-5);
}

TEST(NocEnergy, ZeroUsefulBitsLeavesRatiosZero) {
    NetworkMetrics m;
    m.bits_sent = 1000;
    const auto report = noc_energy(m, Technology::cmos_025um(), 1.0, 0);
    EXPECT_GT(report.joules, 0.0);
    EXPECT_DOUBLE_EQ(report.joules_per_useful_bit, 0.0);
    EXPECT_DOUBLE_EQ(report.energy_delay_product, 0.0);
}

TEST(BusEnergy, SerialisedTimeAndEnergy) {
    const auto report = bus_energy(43'000'000, Technology::cmos_025um(), 43'000'000);
    EXPECT_NEAR(report.seconds, 1.0, 1e-9); // 43 Mbit over a 43 MHz bus
    EXPECT_DOUBLE_EQ(report.joules, 43e6 * 21.6e-10);
    EXPECT_DOUBLE_EQ(report.joules_per_useful_bit, 21.6e-10);
}

TEST(BusEnergy, PerBitEnergyIsTechnologyConstant) {
    // Without gossip redundancy every bus bit is useful: J/bit == E_bit.
    for (std::size_t bits : {100u, 10000u, 1000000u}) {
        const auto report = bus_energy(bits, Technology::cmos_025um(), bits);
        EXPECT_DOUBLE_EQ(report.joules_per_useful_bit, 21.6e-10);
    }
}

TEST(Comparison, PaperEnergyRatioPerBit) {
    // Raw per-bit energies differ 9x (21.6 / 2.4); gossip redundancy eats
    // most of that margin, which is why Fig. 4-6 lands within ~5%.
    const auto tech = Technology::cmos_025um();
    EXPECT_NEAR(tech.bus_ebit_joules / tech.link_ebit_joules, 9.0, 1e-9);
}

TEST(NetworkMetrics, DerivedAverages) {
    NetworkMetrics m;
    m.rounds = 10;
    m.packets_sent = 200;
    m.bits_sent = 200 * 128;
    EXPECT_DOUBLE_EQ(m.packets_per_link_round(4), 5.0);
    EXPECT_DOUBLE_EQ(m.average_packet_bits(), 128.0);
    NetworkMetrics empty;
    EXPECT_DOUBLE_EQ(empty.packets_per_link_round(4), 0.0);
    EXPECT_DOUBLE_EQ(empty.average_packet_bits(), 0.0);
}

TEST(RoundTiming, Eq2) {
    RoundTiming t;
    t.link_frequency_hz = 381e6;
    t.packets_per_round = 3.0;
    t.packet_bits = 127.0;
    EXPECT_DOUBLE_EQ(t.round_seconds(), 3.0 * 127.0 / 381e6);
}

} // namespace
} // namespace snoc
