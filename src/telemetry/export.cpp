#include "telemetry/export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace snoc {

namespace {

std::ofstream open_or_die(const std::string& path) {
    std::ofstream os(path, std::ios::binary); // binary: no \r\n surprises
    SNOC_EXPECT(os.is_open());
    return os;
}

// Chrome's trace viewer wants microsecond timestamps; one simulated
// round maps to 1 ms so rounds are legible at default zoom.
constexpr long long kMicrosPerRound = 1000;

bool terminal_kind(TraceEventKind k) {
    return k == TraceEventKind::Delivered || k == TraceEventKind::TtlExpired ||
           k == TraceEventKind::BufferEvicted;
}

std::string async_span_id(const MessageId& id) {
    // Stable 64-bit id: origin in the high word, sequence in the low.
    std::ostringstream os;
    os << "0x" << std::hex
       << ((static_cast<unsigned long long>(id.origin) << 32) | id.sequence);
    return os.str();
}

} // namespace

std::string format_message_id(const MessageId& id) {
    std::ostringstream os;
    os << id.origin << ':' << id.sequence;
    return os.str();
}

void write_jsonl(const Telemetry& telemetry, std::ostream& os) {
    for (const TraceEvent& e : telemetry.events()) {
        os << "{\"round\":" << e.round << ",\"kind\":\"" << to_string(e.kind)
           << "\",\"tile\":" << e.tile;
        if (e.peer != kNoTile) os << ",\"peer\":" << e.peer;
        if (e.message.origin != kNoTile)
            os << ",\"msg\":\"" << format_message_id(e.message) << '"';
        os << "}\n";
    }
}

void write_jsonl(const Telemetry& telemetry, const std::string& path) {
    auto os = open_or_die(path);
    write_jsonl(telemetry, os);
}

void write_chrome_trace(const Telemetry& telemetry, std::ostream& os) {
    os << "{\"traceEvents\":[\n";
    bool first = true;
    const auto emit = [&](const std::string& line) {
        if (!first) os << ",\n";
        first = false;
        os << line;
    };

    emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"snoc\"}}");
    const std::size_t tiles = telemetry.per_tile().size();
    for (std::size_t t = 0; t < tiles; ++t) {
        std::ostringstream line;
        line << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\"tile " << t
             << "\"}}";
        emit(line.str());
    }

    // One instant per event, on the track of the tile it happened at.
    for (const TraceEvent& e : telemetry.events()) {
        std::ostringstream line;
        line << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << e.tile << ",\"ts\":"
             << static_cast<long long>(e.round) * kMicrosPerRound
             << ",\"s\":\"t\",\"name\":\"" << to_string(e.kind) << '"';
        if (e.message.origin != kNoTile || e.peer != kNoTile) {
            line << ",\"args\":{";
            bool comma = false;
            if (e.message.origin != kNoTile) {
                line << "\"msg\":\"" << format_message_id(e.message) << '"';
                comma = true;
            }
            if (e.peer != kNoTile) {
                if (comma) line << ',';
                line << "\"peer\":" << e.peer;
            }
            line << '}';
        }
        line << '}';
        emit(line.str());
    }

    // One async span per message lifetime.  Begin at its MessageCreated;
    // end at the *last* terminal event (a broadcast rumor delivers many
    // times and its copies age out tile by tile — the span covers the
    // whole lifetime).  Spans still open at the end of the recording are
    // closed one round past the last event and flagged unterminated.
    struct Lifetime {
        Round begin{0};
        TileId origin_tile{0};
        Round end{0};
        const char* outcome{nullptr};
    };
    std::map<MessageId, Lifetime> lifetimes; // ordered: deterministic output
    Round last_round = 0;
    for (const TraceEvent& e : telemetry.events()) {
        last_round = std::max(last_round, e.round);
        if (e.message.origin == kNoTile) continue;
        if (e.kind == TraceEventKind::MessageCreated) {
            auto [it, inserted] = lifetimes.try_emplace(e.message);
            if (inserted) {
                it->second.begin = e.round;
                it->second.origin_tile = e.tile;
            }
        } else if (terminal_kind(e.kind)) {
            auto it = lifetimes.find(e.message);
            if (it == lifetimes.end()) continue; // no recorded birth
            if (!it->second.outcome || e.round >= it->second.end) {
                it->second.end = e.round;
                it->second.outcome = to_string(e.kind);
            }
        }
    }
    for (const auto& [id, life] : lifetimes) {
        const bool unterminated = life.outcome == nullptr;
        const Round end_round = unterminated ? last_round + 1 : life.end;
        std::ostringstream begin;
        begin << "{\"ph\":\"b\",\"cat\":\"msg\",\"pid\":0,\"tid\":"
              << life.origin_tile << ",\"ts\":"
              << static_cast<long long>(life.begin) * kMicrosPerRound
              << ",\"id\":\"" << async_span_id(id) << "\",\"name\":\"msg "
              << format_message_id(id) << "\"}";
        emit(begin.str());
        std::ostringstream end;
        end << "{\"ph\":\"e\",\"cat\":\"msg\",\"pid\":0,\"tid\":"
            << life.origin_tile << ",\"ts\":"
            << static_cast<long long>(end_round) * kMicrosPerRound
            << ",\"id\":\"" << async_span_id(id) << "\",\"name\":\"msg "
            << format_message_id(id) << "\",\"args\":{\"outcome\":\""
            << (unterminated ? "unterminated" : life.outcome) << "\"}}";
        emit(end.str());
    }

    os << "\n]}\n";
}

void write_chrome_trace(const Telemetry& telemetry, const std::string& path) {
    auto os = open_or_die(path);
    write_chrome_trace(telemetry, os);
}

void write_heatmap_csv(const Telemetry& telemetry, std::ostream& os,
                       std::size_t grid_width) {
    os << "tile";
    if (grid_width > 0) os << ",x,y";
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        os << ',' << kTraceEventKindNames[k];
    os << '\n';
    const auto& tiles = telemetry.per_tile();
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        os << t;
        if (grid_width > 0) os << ',' << t % grid_width << ',' << t / grid_width;
        for (std::size_t k = 0; k < kTraceEventKinds; ++k)
            os << ',' << tiles[t][k];
        os << '\n';
    }
}

void write_heatmap_csv(const Telemetry& telemetry, const std::string& path,
                       std::size_t grid_width) {
    auto os = open_or_die(path);
    write_heatmap_csv(telemetry, os, grid_width);
}

void write_link_csv(const Telemetry& telemetry, std::ostream& os) {
    os << "from,to,transmissions\n";
    for (const auto& [link, count] : telemetry.link_transmissions())
        os << link.first << ',' << link.second << ',' << count << '\n';
}

void write_link_csv(const Telemetry& telemetry, const std::string& path) {
    auto os = open_or_die(path);
    write_link_csv(telemetry, os);
}

void write_metrics_json(const NetworkMetrics& metrics, std::ostream& os) {
    bool first = true;
    const auto field = [&](const char* name, std::size_t value) {
        os << (first ? "{\n" : ",\n") << "  \"" << name << "\": " << value;
        first = false;
    };
    field("rounds", metrics.rounds);
    field("packets_sent", metrics.packets_sent);
    field("bits_sent", metrics.bits_sent);
    field("messages_created", metrics.messages_created);
    field("deliveries", metrics.deliveries);
    field("duplicates_ignored", metrics.duplicates_ignored);
    field("crc_drops", metrics.crc_drops);
    field("upsets_undetected", metrics.upsets_undetected);
    field("overflow_drops", metrics.overflow_drops);
    field("ttl_expired", metrics.ttl_expired);
    field("crash_drops", metrics.crash_drops);
    field("port_overflow_drops", metrics.port_overflow_drops);
    field("packets_accepted", metrics.packets_accepted);
    field("skew_deferrals", metrics.skew_deferrals);
    field("fec_corrected", metrics.fec_corrected);
    field("fec_uncorrectable", metrics.fec_uncorrectable);
    // Derived figures, with fixed precision so output stays byte-stable.
    std::ostringstream derived;
    derived.setf(std::ios::fixed);
    derived.precision(6);
    derived << ",\n  \"link_hotspot_factor\": " << metrics.link_hotspot_factor()
            << ",\n  \"average_packet_bits\": " << metrics.average_packet_bits();
    os << derived.str() << "\n}\n";
}

void write_metrics_json(const NetworkMetrics& metrics, const std::string& path) {
    auto os = open_or_die(path);
    write_metrics_json(metrics, os);
}

} // namespace snoc
