// Exporters over a Telemetry recording:
//
//   * JSONL   — one event per line, the interchange format snoc_trace
//               and the query engine load back,
//   * Chrome  — `trace_event`-format JSON for chrome://tracing/Perfetto:
//               one track (thread) per tile carrying instant events, plus
//               one async span per message lifetime (MessageCreated to
//               its last Delivered/TtlExpired/BufferEvicted),
//   * CSV     — per-tile heatmap rows (x,y + one column per event kind)
//               and per-link transmission counts.
//
// All writers are deterministic: identical recordings produce
// byte-identical output (the golden-file tests depend on it).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace snoc {

void write_jsonl(const Telemetry& telemetry, std::ostream& os);
void write_jsonl(const Telemetry& telemetry, const std::string& path);

void write_chrome_trace(const Telemetry& telemetry, std::ostream& os);
void write_chrome_trace(const Telemetry& telemetry, const std::string& path);

/// One row per tile: tile id, (x, y) when `grid_width` > 0, then one
/// column per event kind.  Tiles that never appeared in an event still
/// get a zero row so the heatmap is a full rectangle.
void write_heatmap_csv(const Telemetry& telemetry, std::ostream& os,
                       std::size_t grid_width);
void write_heatmap_csv(const Telemetry& telemetry, const std::string& path,
                       std::size_t grid_width);

/// One row per directed link that carried at least one transmission.
void write_link_csv(const Telemetry& telemetry, std::ostream& os);
void write_link_csv(const Telemetry& telemetry, const std::string& path);

/// Run-counter summary: one flat JSON object naming every scalar
/// NetworkMetrics counter (snoc_lint's registry checker holds this
/// exporter and the invariant auditor in lock-step with metrics.hpp —
/// adding a counter without exporting it here fails the lint), plus the
/// derived hotspot/packet-size figures.  Deterministic: fixed key order,
/// no floats (derived ratios are printed with fixed precision).
void write_metrics_json(const NetworkMetrics& metrics, std::ostream& os);
void write_metrics_json(const NetworkMetrics& metrics, const std::string& path);

/// "5:12" <-> MessageId{5, 12} wire spelling used by JSONL and the CLI.
std::string format_message_id(const MessageId& id);

} // namespace snoc
