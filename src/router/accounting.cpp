#include "router/accounting.hpp"

#include "common/expect.hpp"
#include "telemetry/metrics_registry.hpp"

namespace snoc::router {

void Accounting::attach(const Topology& topo) {
    metrics_.bits_sent_by_tile.assign(topo.node_count(), 0);
    metrics_.packets_by_link.assign(topo.link_count(), 0);
}

void Accounting::advance_to(Round round) {
    if (round > metrics_.rounds) metrics_.rounds = round;
}

void Accounting::created(Round round, TileId tile, MessageId id) {
    advance_to(round);
    ++metrics_.messages_created;
    emit(sink_, round, TraceEventKind::MessageCreated, tile, kNoTile, id);
}

void Accounting::transmitted(Round round, TileId from, TileId to, LinkId link,
                             MessageId id, std::size_t bits) {
    advance_to(round);
    ++metrics_.packets_sent;
    metrics_.bits_sent += bits;
    if (from < metrics_.bits_sent_by_tile.size())
        metrics_.bits_sent_by_tile[from] += bits;
    if (link < metrics_.packets_by_link.size()) ++metrics_.packets_by_link[link];
    if (metrics_.packets_per_round.size() <= round)
        metrics_.packets_per_round.resize(round + 1, 0);
    ++metrics_.packets_per_round[round];
    emit(sink_, round, TraceEventKind::Transmitted, from, to, id);
}

void Accounting::delivered(Round round, TileId tile, MessageId id) {
    advance_to(round);
    ++metrics_.deliveries;
    emit(sink_, round, TraceEventKind::Delivered, tile, kNoTile, id);
}

void Accounting::crash_drop(Round round, TileId tile, MessageId id) {
    advance_to(round);
    ++metrics_.crash_drops;
    emit(sink_, round, TraceEventKind::CrashDrop, tile, kNoTile, id);
}

void Accounting::ttl_expired(Round round, TileId tile, MessageId id) {
    advance_to(round);
    ++metrics_.ttl_expired;
    emit(sink_, round, TraceEventKind::TtlExpired, tile, kNoTile, id);
}

void Accounting::publish_registry() {
    auto& reg = MetricsRegistry::global();
    const auto bump = [&](MetricId id, std::size_t current,
                          std::size_t& published) {
        if (current > published) {
            reg.inc(id, current - published);
            published = current;
        }
    };
    bump(MetricId::RouterPacketsCreatedTotal, metrics_.messages_created,
         published_.created);
    bump(MetricId::RouterPacketsTransmittedTotal, metrics_.packets_sent,
         published_.transmitted);
    bump(MetricId::RouterPacketsDeliveredTotal, metrics_.deliveries,
         published_.delivered);
    bump(MetricId::RouterCrashDropsTotal, metrics_.crash_drops,
         published_.crash_drops);
    bump(MetricId::RouterTtlExpiredTotal, metrics_.ttl_expired,
         published_.ttl_expired);
}

} // namespace snoc::router
