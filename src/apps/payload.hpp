// Typed (de)serialisation of message payloads.  IP cores exchange real
// data (summation limits, FFT coefficients, MDCT spectra), so payloads are
// actual bytes — which is also what makes data upsets meaningful.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/expect.hpp"

namespace snoc {

class PayloadWriter {
public:
    template <typename T>
    PayloadWriter& put(T value) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto old = bytes_.size();
        bytes_.resize(old + sizeof(T));
        std::memcpy(bytes_.data() + old, &value, sizeof(T));
        return *this;
    }

    PayloadWriter& put_f32(double value) { return put(static_cast<float>(value)); }

    template <typename T>
    PayloadWriter& put_all(std::span<const T> values) {
        for (const T& v : values) put(v);
        return *this;
    }

    std::vector<std::byte> take() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

private:
    std::vector<std::byte> bytes_;
};

class PayloadReader {
public:
    explicit PayloadReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

    template <typename T>
    T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        SNOC_EXPECT(pos_ + sizeof(T) <= bytes_.size());
        T value;
        std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    double get_f32() { return static_cast<double>(get<float>()); }

    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool exhausted() const { return remaining() == 0; }

private:
    std::span<const std::byte> bytes_;
    std::size_t pos_{0};
};

} // namespace snoc
