file(REMOVE_RECURSE
  "CMakeFiles/fig4_6_bus_comparison.dir/fig4_6_bus_comparison.cpp.o"
  "CMakeFiles/fig4_6_bus_comparison.dir/fig4_6_bus_comparison.cpp.o.d"
  "fig4_6_bus_comparison"
  "fig4_6_bus_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_6_bus_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
