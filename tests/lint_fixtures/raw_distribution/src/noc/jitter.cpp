#include <random>
// BAD: raw distribution bypasses RngStream's cached-threshold discipline
// and is implementation-defined across standard libraries.
namespace snoc {
int jitter(std::mt19937& gen) {
    std::uniform_int_distribution<int> dist(0, 3);
    return dist(gen);
}
}
