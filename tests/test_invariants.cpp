// Property-based conservation laws of the gossip engine, checked through
// the flight recorder under randomized workloads and fault scenarios.
//
//   1. causality    — every Delivered/Transmitted/TtlExpired event refers
//                     to a message that was Created earlier (or at the
//                     same round);
//   2. single shot  — a unicast rumor is delivered at most once;
//   3. closure      — after drain() every created rumor has been garbage-
//                     collected somewhere (TTL expiry is inevitable);
//   4. accounting   — metrics agree with the event stream and with each
//                     other, for any seed and any fault mix.
#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "sim/trace.hpp"

namespace snoc {
namespace {

/// Sends unicasts to random live-looking destinations at random rounds.
class RandomChatter final : public IpCore {
public:
    explicit RandomChatter(std::size_t tiles) : tiles_(tiles) {}
    void on_round(TileContext& ctx) override {
        if (ctx.round() > 12) return; // bounded workload so drain converges
        if (!ctx.rng().bernoulli(0.3)) return;
        auto dst = static_cast<TileId>(ctx.rng().below(tiles_ - 1));
        if (dst >= ctx.tile()) ++dst;
        ctx.send(dst, 0xCC, {std::byte{1}, std::byte{2}});
    }
    void on_message(const Message&, TileContext&) override {}

private:
    std::size_t tiles_;
};

struct Recorded {
    RingBufferSink ring{1 << 20};
    CountingSink counts;
    TeeSink tee;
    Recorded() {
        tee.add(&ring);
        tee.add(&counts);
    }
};

struct InvariantRun {
    NetworkMetrics metrics;
    std::deque<TraceEvent> events;
    CountingSink counts;
};

InvariantRun run_random(std::uint64_t seed, FaultScenario scenario, double p) {
    GossipConfig c;
    c.forward_p = p;
    c.default_ttl = 10;
    GossipNetwork net(Topology::mesh(4, 4), c, scenario, seed);
    Recorded rec;
    net.set_trace_sink(&rec.tee);
    for (TileId t = 0; t < 16; ++t)
        net.attach(t, std::make_unique<RandomChatter>(16));
    for (int i = 0; i < 30; ++i) net.step();
    net.drain(200);
    InvariantRun out;
    out.metrics = net.metrics();
    out.events = rec.ring.events();
    out.counts = rec.counts;
    EXPECT_EQ(rec.ring.dropped(), 0u) << "ring too small for the property check";
    return out;
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(InvariantSweep, ConservationLaws) {
    const auto [seed, upset] = GetParam();
    FaultScenario s;
    s.p_upset = upset;
    s.p_tiles = 0.05;
    s.p_overflow = upset / 4.0;
    s.sigma_synchr = 0.1;
    const auto run = run_random(seed, s, 0.5);

    std::map<MessageId, Round> created;
    std::map<MessageId, std::size_t> delivered;
    std::set<MessageId> expired;
    for (const auto& e : run.events) {
        switch (e.kind) {
        case TraceEventKind::MessageCreated:
            EXPECT_FALSE(created.contains(e.message)) << format_event(e);
            created.emplace(e.message, e.round);
            break;
        case TraceEventKind::Transmitted:
        case TraceEventKind::Delivered:
        case TraceEventKind::TtlExpired:
        case TraceEventKind::DuplicateIgnored:
        case TraceEventKind::SkewDeferral: {
            // 1. causality.
            const auto it = created.find(e.message);
            ASSERT_NE(it, created.end()) << format_event(e);
            EXPECT_GE(e.round, it->second) << format_event(e);
            if (e.kind == TraceEventKind::Delivered) ++delivered[e.message];
            if (e.kind == TraceEventKind::TtlExpired) expired.insert(e.message);
            break;
        }
        default:
            break; // drops carry no id
        }
    }
    // 2. unicast single-shot delivery.
    for (const auto& [id, count] : delivered) EXPECT_EQ(count, 1u) << id.origin;
    // 3. closure: every created rumor was eventually collected somewhere.
    for (const auto& [id, round] : created)
        EXPECT_TRUE(expired.contains(id))
            << "message (" << id.origin << "," << id.sequence << ") never expired";
    // 4. accounting.
    const auto& m = run.metrics;
    EXPECT_EQ(run.counts.count(TraceEventKind::Transmitted), m.packets_sent);
    EXPECT_EQ(run.counts.count(TraceEventKind::Delivered), m.deliveries);
    EXPECT_EQ(run.counts.count(TraceEventKind::MessageCreated), m.messages_created);
    EXPECT_EQ(run.counts.count(TraceEventKind::CrcDrop), m.crc_drops);
    EXPECT_EQ(run.counts.count(TraceEventKind::TtlExpired), m.ttl_expired);
    std::size_t per_round_sum = 0;
    for (auto n : m.packets_per_round) per_round_sum += n;
    EXPECT_EQ(per_round_sum, m.packets_sent);
    std::size_t per_tile_sum = 0;
    for (auto b : m.bits_sent_by_tile) per_tile_sum += b;
    EXPECT_EQ(per_tile_sum, m.bits_sent);
    EXPECT_LE(m.deliveries, m.messages_created);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, InvariantSweep,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull),
                       ::testing::Values(0.0, 0.3, 0.6)));

TEST(Invariants, FloodingDeliversEverythingOnHealthyChip) {
    // With p = 1 and no faults, every unicast is delivered exactly once.
    const auto run = run_random(11, FaultScenario::none(), 1.0);
    std::size_t created = 0, delivered = 0;
    for (const auto& e : run.events) {
        if (e.kind == TraceEventKind::MessageCreated) ++created;
        if (e.kind == TraceEventKind::Delivered) ++delivered;
    }
    EXPECT_GT(created, 0u);
    EXPECT_EQ(delivered, created);
}

TEST(Invariants, EnergyNeverNegativeNorFreeLunch) {
    const auto run = run_random(12, FaultScenario::none(), 0.5);
    const auto& m = run.metrics;
    EXPECT_GT(m.bits_sent, 0u);
    // Every delivery costs at least one transmission.
    EXPECT_GE(m.packets_sent, m.deliveries);
    // Average packet size includes header + CRC framing of the 2-byte
    // payload: (30 + 2) * 8 bits.
    EXPECT_DOUBLE_EQ(m.average_packet_bits(), (kWireOverheadBytes + 2) * 8.0);
}

} // namespace
} // namespace snoc
