#include "apps/mdct.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::apps {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
    snoc::RngStream rng(seed);
    std::vector<double> v(n);
    for (auto& x : v) x = 2.0 * rng.uniform() - 1.0;
    return v;
}

TEST(Mdct, OutputSizeIsHalfWindow) {
    Mdct m(64);
    EXPECT_EQ(m.size(), 64u);
    const auto coeffs = m.forward(std::vector<double>(128, 0.5));
    EXPECT_EQ(coeffs.size(), 64u);
    const auto time = m.inverse(coeffs);
    EXPECT_EQ(time.size(), 128u);
}

TEST(Mdct, RejectsWrongWindowLength) {
    Mdct m(64);
    EXPECT_THROW(m.forward(std::vector<double>(64)), snoc::ContractViolation);
    EXPECT_THROW(m.inverse(std::vector<double>(128)), snoc::ContractViolation);
}

TEST(Mdct, SineWindowPrincenBradley) {
    // w(i)^2 + w(i+N)^2 == 1 — the condition that makes TDAC work.
    Mdct m(32);
    for (std::size_t i = 0; i < 32; ++i) {
        const double a = m.window(i);
        const double b = m.window(i + 32);
        EXPECT_NEAR(a * a + b * b, 1.0, 1e-12);
    }
}

TEST(Mdct, ZeroInZeroOut) {
    Mdct m(16);
    for (double c : m.forward(std::vector<double>(32, 0.0)))
        EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Mdct, Linearity) {
    Mdct m(32);
    const auto a = random_signal(64, 1);
    const auto b = random_signal(64, 2);
    std::vector<double> sum(64);
    for (std::size_t i = 0; i < 64; ++i) sum[i] = a[i] + 3.0 * b[i];
    const auto ca = m.forward(a);
    const auto cb = m.forward(b);
    const auto cs = m.forward(sum);
    for (std::size_t k = 0; k < 32; ++k)
        EXPECT_NEAR(cs[k], ca[k] + 3.0 * cb[k], 1e-9);
}

TEST(Mdct, TdacPerfectReconstruction) {
    // Overlap-add of IMDCT halves reconstructs the interior exactly.
    const std::size_t n = 64;
    Mdct m(n);
    const auto signal = random_signal(8 * n, 3);
    const auto frames = mdct_analyze(m, signal);
    const auto rebuilt = mdct_synthesize(m, frames);
    ASSERT_EQ(rebuilt.size(), signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_NEAR(rebuilt[i], signal[i], 1e-10) << "sample " << i;
}

TEST(Mdct, ToneEnergyConcentratesInNeighbouringBins) {
    const std::size_t n = 128;
    Mdct m(n);
    std::vector<double> window(2 * n);
    // Bin k of an MDCT of size n corresponds to frequency (k+0.5)/(2n) fs.
    const double k_target = 20.0;
    for (std::size_t i = 0; i < 2 * n; ++i)
        window[i] = std::cos(std::numbers::pi / n * (k_target + 0.5) *
                             (static_cast<double>(i) + 0.5 + n / 2.0));
    const auto coeffs = m.forward(window);
    double peak = 0.0;
    std::size_t peak_k = 0;
    for (std::size_t k = 0; k < n; ++k)
        if (std::abs(coeffs[k]) > peak) {
            peak = std::abs(coeffs[k]);
            peak_k = k;
        }
    EXPECT_EQ(peak_k, static_cast<std::size_t>(k_target));
}

TEST(MdctAnalyze, FrameCountIsHopsPlusOne) {
    Mdct m(32);
    const auto frames = mdct_analyze(m, random_signal(32 * 5, 4));
    EXPECT_EQ(frames.size(), 6u);
    for (const auto& f : frames) EXPECT_EQ(f.size(), 32u);
}

TEST(MdctAnalyze, RejectsNonMultipleLength) {
    Mdct m(32);
    EXPECT_THROW(mdct_analyze(m, std::vector<double>(33)), snoc::ContractViolation);
}

class MdctSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MdctSizeSweep, TdacHoldsForAllSizes) {
    const std::size_t n = GetParam();
    Mdct m(n);
    const auto signal = random_signal(4 * n, n);
    const auto rebuilt = mdct_synthesize(m, mdct_analyze(m, signal));
    double err = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i)
        err = std::max(err, std::abs(rebuilt[i] - signal[i]));
    EXPECT_LT(err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MdctSizeSweep, ::testing::Values(8, 16, 32, 128, 256));

} // namespace
} // namespace snoc::apps
