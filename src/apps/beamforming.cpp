#include "apps/beamforming.hpp"

#include "common/expect.hpp"

namespace snoc::apps {

TrafficTrace beamforming_trace(const BeamformingMapping& mapping, std::size_t frames,
                               std::size_t sample_block_bits,
                               std::size_t partial_beam_bits) {
    SNOC_EXPECT(!mapping.sensors.empty());
    SNOC_EXPECT(!mapping.aggregators.empty());
    SNOC_EXPECT(mapping.sensors.size() % mapping.aggregators.size() == 0);
    const std::size_t per_cluster = mapping.sensors.size() / mapping.aggregators.size();

    TrafficTrace trace;
    for (std::size_t f = 0; f < frames; ++f) {
        TrafficPhase gather;
        for (std::size_t s = 0; s < mapping.sensors.size(); ++s)
            gather.messages.push_back({mapping.sensors[s],
                                       mapping.aggregators[s / per_cluster],
                                       sample_block_bits});
        TrafficPhase combine;
        for (TileId agg : mapping.aggregators)
            combine.messages.push_back({agg, mapping.combiner, partial_beam_bits});
        trace.phases.push_back(std::move(gather));
        trace.phases.push_back(std::move(combine));
    }
    return trace;
}

std::vector<double> delay_and_sum(const std::vector<std::vector<double>>& blocks,
                                  const std::vector<std::size_t>& delays) {
    SNOC_EXPECT(!blocks.empty());
    SNOC_EXPECT(blocks.size() == delays.size());
    const std::size_t n = blocks.front().size();
    for (const auto& b : blocks) SNOC_EXPECT(b.size() == n);

    std::vector<double> beam(n, 0.0);
    for (std::size_t s = 0; s < blocks.size(); ++s) {
        const std::size_t d = delays[s];
        SNOC_EXPECT(d < n);
        for (std::size_t i = 0; i + d < n; ++i) beam[i] += blocks[s][i + d];
    }
    for (double& v : beam) v /= static_cast<double>(blocks.size());
    return beam;
}

} // namespace snoc::apps
