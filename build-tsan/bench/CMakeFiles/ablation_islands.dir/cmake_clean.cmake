file(REMOVE_RECURSE
  "CMakeFiles/ablation_islands.dir/ablation_islands.cpp.o"
  "CMakeFiles/ablation_islands.dir/ablation_islands.cpp.o.d"
  "ablation_islands"
  "ablation_islands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_islands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
