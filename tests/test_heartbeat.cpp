// Heartbeat streaming tests: record write/load round-trip (including
// torn-line tolerance, the state a tailing snoc_top actually sees),
// HeartbeatWriter cadence, the render_top terminal summary, and the
// ScenarioRunner integration — a progress sink is a pure observer, so
// sweep results must be bit-identical with and without one attached and
// for any --jobs value.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/backends.hpp"
#include "sim/scenario.hpp"
#include "telemetry/heartbeat.hpp"

namespace snoc {
namespace {

HeartbeatRecord record(std::uint64_t seq, std::size_t trials_done,
                       std::size_t trials_total) {
    HeartbeatRecord r;
    r.seq = seq;
    r.elapsed_seconds = 0.25 * static_cast<double>(seq);
    r.experiment = "fig4_4";
    r.cells_total = 4;
    r.cells_done = trials_done / 2;
    r.trials_total = trials_total;
    r.trials_done = trials_done;
    r.retries = 1;
    r.rounds_total = 100 * seq;
    r.rounds_delta = 100;
    return r;
}

TEST(Heartbeat, WriteLoadRoundTrip) {
    std::ostringstream os;
    auto a = record(1, 3, 8);
    a.cell_seconds = 0.5;
    a.eta_seconds = 2.5;
    write_heartbeat(a, os);
    auto b = record(2, 8, 8);
    b.done = true;
    b.postmortems = 2;
    write_heartbeat(b, os);

    std::istringstream is(os.str());
    const auto loaded = load_heartbeats(is);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].seq, 1u);
    EXPECT_EQ(loaded[0].experiment, "fig4_4");
    EXPECT_EQ(loaded[0].trials_done, 3u);
    EXPECT_EQ(loaded[0].trials_total, 8u);
    EXPECT_EQ(loaded[0].retries, 1u);
    EXPECT_NEAR(loaded[0].cell_seconds, 0.5, 1e-9);
    EXPECT_NEAR(loaded[0].eta_seconds, 2.5, 1e-9);
    EXPECT_EQ(loaded[0].rounds_total, 100u);
    EXPECT_FALSE(loaded[0].done);
    EXPECT_EQ(loaded[1].seq, 2u);
    EXPECT_EQ(loaded[1].postmortems, 2u);
    EXPECT_TRUE(loaded[1].done);
}

TEST(Heartbeat, LoaderSkipsTornAndForeignLines) {
    std::ostringstream os;
    write_heartbeat(record(1, 1, 4), os);
    std::string text = os.str();
    text += "{\"not\":\"a heartbeat\"}\n";
    text += "{\"heartbeat\":1,\"schema\":\"snoc-heartbeat-v1\",\"seq\":2,";
    // ^ torn mid-write: no trials_done, must be skipped, not crash.
    std::istringstream is(text);
    const auto loaded = load_heartbeats(is);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].seq, 1u);
}

TEST(Heartbeat, RenderTopSummarizesLatest) {
    std::vector<HeartbeatRecord> records{record(1, 2, 8), record(2, 4, 8)};
    records[1].eta_seconds = 1.5;
    std::ostringstream os;
    render_top(records, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("fig4_4"), std::string::npos);
    EXPECT_NE(text.find("running"), std::string::npos);
    EXPECT_NE(text.find("4/8"), std::string::npos); // trials
    EXPECT_NE(text.find("2/4"), std::string::npos); // cells
    EXPECT_EQ(text.find("postmortem"), std::string::npos);

    records.push_back(record(3, 8, 8));
    records.back().done = true;
    records.back().postmortems = 1;
    std::ostringstream done;
    render_top(records, done);
    EXPECT_NE(done.str().find("done"), std::string::npos);
    EXPECT_NE(done.str().find("postmortem"), std::string::npos);
}

TEST(Heartbeat, WriterHonoursCadenceAndBoundaries) {
    const std::string path = ::testing::TempDir() + "cadence.heartbeat.jsonl";
    {
        HeartbeatWriter writer(path, 3);
        ProgressUpdate u;
        u.experiment = "cadence";
        u.trials_total = 7;
        u.cells_total = 1;
        for (std::size_t done = 1; done <= 6; ++done) {
            u.trials_done = done;
            writer.update(u); // cadence hits at 3 and 6 only
        }
        u.trials_done = 7;
        u.cell_seconds = 0.125; // cell boundary always emits
        writer.update(u);
        u.cell_seconds = -1.0;
        u.cells_done = 1;
        u.sweep_done = true; // final record always emits
        writer.update(u);
        EXPECT_EQ(writer.emitted(), 4u);
    }
    const auto loaded = load_heartbeats_file(path);
    ASSERT_EQ(loaded.size(), 4u);
    EXPECT_EQ(loaded[0].trials_done, 3u);
    EXPECT_EQ(loaded[1].trials_done, 6u);
    EXPECT_EQ(loaded[2].trials_done, 7u);
    EXPECT_TRUE(loaded[3].done);
    // Sequence numbers are consecutive from 1; elapsed is monotone.
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].seq, i + 1);
        if (i > 0)
            EXPECT_GE(loaded[i].elapsed_seconds, loaded[i - 1].elapsed_seconds);
    }
    std::remove(path.c_str());
}

/// Collects every update for the integration assertions below.
struct CollectingSink final : ProgressSink {
    std::vector<ProgressUpdate> updates;
    std::mutex mutex;
    void update(const ProgressUpdate& u) override {
        std::lock_guard<std::mutex> lock(mutex);
        updates.push_back(u);
    }
};

ExperimentSpec tiny_sweep(std::size_t jobs) {
    ExperimentSpec spec;
    spec.name = "heartbeat-sweep";
    spec.axes.push_back({"p", {0.4, 0.6}});
    spec.repeats = 3;
    spec.base_seed = 11;
    spec.max_rounds = 80;
    spec.jobs = jobs;
    spec.backend = [](const SweepPoint& point, std::uint64_t seed) {
        GossipSpec gs;
        gs.topology = Topology::mesh(4, 4);
        gs.config.forward_p = point.value("p");
        gs.config.default_ttl = 10;
        return make_interconnect(std::move(gs), FaultScenario::none(), seed);
    };
    spec.trace = [](const SweepPoint&) {
        TrafficTrace trace;
        TrafficPhase phase;
        phase.messages.push_back({0, 15, 64});
        phase.messages.push_back({15, 0, 64});
        trace.phases.push_back(phase);
        return trace;
    };
    return spec;
}

std::string result_image(const std::vector<CellResult>& cells) {
    std::ostringstream os;
    for (const CellResult& cell : cells)
        for (const RunReport& r : cell.reports)
            os << r.completed << ' ' << r.rounds << ' ' << r.transmissions
               << ' ' << r.deliveries << ' ' << r.seed << '\n';
    return os.str();
}

TEST(HeartbeatScenario, SinkIsAPureObserverAcrossJobs) {
    ScenarioRunner bare(tiny_sweep(1));
    const std::string want = result_image(bare.run());

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ScenarioRunner watched(tiny_sweep(jobs));
        CollectingSink sink;
        watched.set_progress_sink(&sink);
        const auto results = watched.run();
        EXPECT_EQ(result_image(results), want) << "jobs " << jobs;

        // One update per trial, plus the final sweep-done record.
        ASSERT_EQ(sink.updates.size(), 7u) << "jobs " << jobs;
        std::size_t last_done = 0;
        for (std::size_t i = 0; i + 1 < sink.updates.size(); ++i) {
            EXPECT_EQ(sink.updates[i].trials_done, last_done + 1);
            last_done = sink.updates[i].trials_done;
            EXPECT_EQ(sink.updates[i].trials_total, 6u);
            EXPECT_FALSE(sink.updates[i].sweep_done);
        }
        const ProgressUpdate& final_update = sink.updates.back();
        EXPECT_TRUE(final_update.sweep_done);
        EXPECT_EQ(final_update.trials_done, 6u);
        EXPECT_EQ(final_update.cells_done, 2u);
        // Exactly two updates closed a cell (cell_seconds stamped).
        std::size_t closed = 0;
        for (const ProgressUpdate& u : sink.updates)
            if (u.cell_seconds >= 0.0) ++closed;
        EXPECT_EQ(closed, 2u);
    }
}

TEST(HeartbeatScenario, WriterStreamsTheSweep) {
    const std::string path = ::testing::TempDir() + "sweep.heartbeat.jsonl";
    auto spec = tiny_sweep(2);
    spec.telemetry.heartbeat_out = path;
    spec.telemetry.heartbeat_every = 1;
    ScenarioRunner runner(std::move(spec));
    runner.run();

    const auto loaded = load_heartbeats_file(path);
    ASSERT_GE(loaded.size(), 2u);
    EXPECT_EQ(loaded.front().experiment, "heartbeat-sweep");
    EXPECT_TRUE(loaded.back().done);
    EXPECT_EQ(loaded.back().trials_done, 6u);
    EXPECT_GT(loaded.back().rounds_total, 0u);
    std::ostringstream os;
    render_top(loaded, os);
    EXPECT_NE(os.str().find("heartbeat-sweep"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace snoc
