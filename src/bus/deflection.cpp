#include "bus/deflection.hpp"

#include <algorithm>
#include <map>

#include "common/expect.hpp"
#include "router/accounting.hpp"
#include "router/policy.hpp"

namespace snoc::deflection {

Network::Network(std::size_t width, std::size_t height, Config config,
                 std::uint64_t seed)
    : topo_(Topology::mesh(width, height)),
      config_(config),
      rng_(splitmix64(seed)),
      dead_(topo_.node_count(), false) {
    SNOC_EXPECT(config.max_hops >= 1);
}

void Network::apply_crashes(const CrashState& crashes) {
    SNOC_EXPECT(crashes.dead_tiles.size() == topo_.node_count());
    dead_ = crashes.dead_tiles;
}

void Network::trace_event(TraceEventKind kind, TileId tile, TileId peer,
                          const PacketRecord& rec) {
    router::emit(trace_, static_cast<Round>(cycle_), kind, tile, peer,
                 MessageId{rec.source, rec.id});
}

std::uint32_t Network::inject(TileId source, TileId destination) {
    SNOC_EXPECT(source < topo_.node_count());
    SNOC_EXPECT(destination < topo_.node_count());
    SNOC_EXPECT(source != destination);
    SNOC_EXPECT(!dead_[source]);
    const auto id = static_cast<std::uint32_t>(records_.size());
    records_.push_back(PacketRecord{id, source, destination, cycle_, std::nullopt,
                                    0, false});
    flying_.push_back({id, source});
    trace_event(TraceEventKind::MessageCreated, source, kNoTile, records_.back());
    return id;
}

std::size_t Network::in_flight() const { return flying_.size(); }

void Network::step() {
    // Per tile: collect resident packets, then assign output ports —
    // productive first, deflections for the rest.  A link carries one
    // packet per cycle per direction.
    std::map<TileId, std::vector<std::size_t>> by_tile; // index into flying_
    for (std::size_t i = 0; i < flying_.size(); ++i)
        by_tile[flying_[i].at].push_back(i);

    std::vector<Moving> next;
    next.reserve(flying_.size());
    for (auto& [tile, residents] : by_tile) {
        const auto& nbrs = topo_.neighbours(tile);
        std::vector<bool> port_used(nbrs.size(), false);
        // Shuffle residents so deflection victims rotate fairly.
        for (std::size_t i = residents.size(); i > 1; --i)
            std::swap(residents[i - 1],
                      residents[static_cast<std::size_t>(rng_.below(i))]);
        const router::ProductivePolicy productive;
        for (std::size_t idx : residents) {
            auto& rec = records_[flying_[idx].id];
            // Preferred (productive) ports — the shared routing-policy
            // stage lists the live Manhattan-reducing ports in ascending
            // port order; the first one not already taken this cycle wins.
            std::optional<std::size_t> chosen;
            for (const std::size_t p : productive.candidates(
                     topo_, tile, kNoTile, rec.destination, dead_)) {
                if (port_used[p]) continue;
                chosen = p;
                break;
            }
            if (!chosen) {
                // Deflect: any free live port.
                std::vector<std::size_t> free;
                for (std::size_t p = 0; p < nbrs.size(); ++p)
                    if (!port_used[p] && !dead_[nbrs[p]]) free.push_back(p);
                if (!free.empty())
                    chosen = free[static_cast<std::size_t>(rng_.below(free.size()))];
            }
            if (!chosen) {
                // Completely walled in this cycle: hold in place, but the
                // stall still burns hop budget so a packet with no live
                // ports at all is eventually declared lost.
                ++rec.hops;
                if (rec.hops >= config_.max_hops) {
                    rec.dropped = true;
                    ++dropped_;
                    trace_event(TraceEventKind::TtlExpired, tile, kNoTile, rec);
                } else {
                    next.push_back({flying_[idx].id, tile});
                }
                continue;
            }
            port_used[*chosen] = true;
            const TileId to = nbrs[*chosen];
            ++rec.hops;
            trace_event(TraceEventKind::Transmitted, tile, to, rec);
            if (to == rec.destination) {
                rec.delivered_cycle = cycle_;
                latencies_.add(static_cast<double>(cycle_ - rec.injected_cycle + 1));
                hops_.add(static_cast<double>(rec.hops));
                ++delivered_;
                trace_event(TraceEventKind::Delivered, to, kNoTile, rec);
            } else if (rec.hops >= config_.max_hops) {
                rec.dropped = true; // livelock guard
                ++dropped_;
                trace_event(TraceEventKind::TtlExpired, to, kNoTile, rec);
            } else {
                next.push_back({flying_[idx].id, to});
            }
        }
    }
    flying_ = std::move(next);
    ++cycle_;
}

void Network::run(std::size_t cycles) {
    for (std::size_t i = 0; i < cycles && !flying_.empty(); ++i) step();
}

} // namespace snoc::deflection
