#include "bus/xy_router.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace snoc {

std::vector<TileId> xy_route(const Topology& mesh, TileId src, TileId dst) {
    SNOC_EXPECT(mesh.is_grid());
    SNOC_EXPECT(src < mesh.node_count() && dst < mesh.node_count());
    std::vector<TileId> path{src};
    std::size_t x = mesh.x_of(src);
    std::size_t y = mesh.y_of(src);
    const std::size_t tx = mesh.x_of(dst);
    const std::size_t ty = mesh.y_of(dst);
    while (x != tx) {
        x += (x < tx) ? 1 : static_cast<std::size_t>(-1);
        path.push_back(mesh.at(x, y));
    }
    while (y != ty) {
        y += (y < ty) ? 1 : static_cast<std::size_t>(-1);
        path.push_back(mesh.at(x, y));
    }
    return path;
}

namespace {

/// Find the directed link id for hop a->b (must exist in a mesh).
LinkId link_between(const Topology& mesh, TileId a, TileId b) {
    const auto& nbrs = mesh.neighbours(a);
    const auto& links = mesh.out_links(a);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
        if (nbrs[i] == b) return links[i];
    SNOC_ENSURE(false && "hop endpoints are not neighbours");
    return 0;
}

bool path_alive(const Topology& mesh, const std::vector<TileId>& path,
                const CrashState& crashes) {
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (crashes.dead_tiles[path[i]]) return false;
        if (i + 1 < path.size() &&
            crashes.dead_links[link_between(mesh, path[i], path[i + 1])])
            return false;
    }
    return true;
}

} // namespace

XyRunResult run_xy_trace(const Topology& mesh, const TrafficTrace& trace,
                         const CrashState& crashes) {
    SNOC_EXPECT(crashes.dead_tiles.size() == mesh.node_count());
    SNOC_EXPECT(crashes.dead_links.size() == mesh.link_count());
    XyRunResult result;
    for (const auto& phase : trace.phases) {
        std::size_t longest = 0;
        for (const auto& m : phase.messages) {
            const auto path = xy_route(mesh, m.src, m.dst);
            if (!path_alive(mesh, path, crashes)) {
                ++result.lost;
                continue;
            }
            ++result.delivered;
            const std::size_t hops = path.size() - 1;
            longest = std::max(longest, hops);
            result.hops += hops;
            result.bits += m.bits * hops;
        }
        result.rounds += longest;
    }
    return result;
}

} // namespace snoc
