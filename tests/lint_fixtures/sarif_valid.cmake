# ctest helper (see tests/CMakeLists.txt): run snoc_lint with a SARIF
# sink, then require the artifact to parse as JSON.
execute_process(
  COMMAND ${PYTHON} ${SOURCE_DIR}/tools/snoc_lint --root ${SOURCE_DIR}
          --sarif-out ${OUT}
  RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "snoc_lint failed (rc=${lint_rc})")
endif()
execute_process(
  COMMAND ${PYTHON} -m json.tool ${OUT}
  OUTPUT_QUIET
  RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
  message(FATAL_ERROR "SARIF output is not valid JSON (rc=${json_rc})")
endif()
