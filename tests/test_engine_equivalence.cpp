// The encode-once forward path, the in-flight ring buffer and the whole
// event-driven engine are pure optimisations: for any fixed seed the
// network must behave exactly as if every transmission serialised its own
// packet (the reference_encode_path diagnostic knob re-enables that) and
// exactly as if every tile were walked every round (the lockstep engine).
// These tests run the same scenario through each variant and require
// NetworkMetrics, per-kind trace counts and elapsed local time to match
// field-for-field — any divergence means a shared wire image leaked a
// mutation, an RNG draw moved, a ring bucket aliased a live round, or the
// event engine's active set skipped a tile that still had work.
//
// Backend-level equivalence (every BackendKind run under --engine event,
// lint-enforced) lives in test_event_engine.cpp.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "apps/master_slave_pi.hpp"
#include "core/engine.hpp"
#include "core/event_engine.hpp"

namespace snoc {
namespace {

class BroadcastSource final : public IpCore {
public:
    void on_start(TileContext& ctx) override {
        ctx.send(kBroadcast, 0xEE, std::vector<std::byte>(24, std::byte{7}));
    }
    void on_message(const Message&, TileContext&) override {}
};

class ChattySource final : public IpCore {
public:
    explicit ChattySource(TileId dest) : dest_(dest) {}
    void on_round(TileContext& ctx) override {
        if (ctx.round() % 3 == 0 && sent_ < 6) {
            ctx.send(dest_, 0xC0 + sent_, {static_cast<std::byte>(sent_)});
            ++sent_;
        }
    }
    void on_message(const Message&, TileContext&) override {}

private:
    TileId dest_;
    std::size_t sent_{0};
};

class Sink final : public IpCore {
public:
    void on_message(const Message&, TileContext&) override {}
};

struct Scenario {
    std::string name;
    GossipConfig config;
    FaultScenario faults;
    bool unicast_traffic{false};
    bool use_pi_app{false};
    bool forward_cap{false};
    bool islands{false};
};

std::vector<Scenario> scenarios() {
    std::vector<Scenario> out;

    Scenario plain;
    plain.name = "plain_broadcast";
    plain.config.forward_p = 0.5;
    plain.config.default_ttl = 16;
    out.push_back(plain);

    Scenario upsets = plain;
    upsets.name = "heavy_upsets";
    upsets.faults.p_upset = 0.4;
    out.push_back(upsets);

    Scenario secded = upsets;
    secded.name = "secded_upsets";
    secded.config.link_protection = LinkProtection::SecdedCorrect;
    out.push_back(secded);

    Scenario skew = plain;
    skew.name = "clock_skew";
    skew.faults.sigma_synchr = 0.6; // exercises the round+2 ring bucket
    out.push_back(skew);

    Scenario crashes = upsets;
    crashes.name = "crashes_and_upsets";
    crashes.faults.p_tiles = 0.1;
    crashes.faults.p_links = 0.05;
    out.push_back(crashes);

    Scenario unicast = plain;
    unicast.name = "stop_spread_unicast";
    unicast.config.stop_spread_on_delivery = true;
    unicast.unicast_traffic = true;
    out.push_back(unicast);

    Scenario capped = plain;
    capped.name = "forward_capacity";
    capped.forward_cap = true;
    capped.unicast_traffic = true;
    out.push_back(capped);

    Scenario island = plain;
    island.name = "islands_with_skew";
    island.islands = true;
    island.faults.sigma_synchr = 0.4;
    out.push_back(island);

    Scenario app = plain;
    app.name = "pi_app_upsets";
    app.use_pi_app = true;
    app.faults.p_upset = 0.2;
    app.config.default_ttl = 30;
    out.push_back(app);

    return out;
}

/// Everything a run can observably produce: metrics, per-kind trace
/// counts, local time and the spread count of the broadcast rumor.
struct RunOutput {
    NetworkMetrics metrics;
    std::array<std::size_t, kTraceEventKinds> trace_counts{};
    double elapsed{0.0};
    std::size_t spread{0};
};

RunOutput run_scenario(const Scenario& s, std::uint64_t seed,
                       bool reference_encode, EngineSelect engine = {}) {
    GossipConfig config = s.config;
    config.reference_encode_path = reference_encode;
    GossipNetwork net(Topology::mesh(4, 4), config, s.faults, seed, engine);
    CountingSink counter;
    net.set_trace_sink(&counter);
    net.attach(0, std::make_unique<BroadcastSource>());
    if (s.unicast_traffic) {
        net.attach(5, std::make_unique<ChattySource>(15));
        net.attach(15, std::make_unique<Sink>());
    }
    if (s.forward_cap) {
        net.set_forward_capacity(5, 2);
        net.set_forward_capacity(6, 1);
    }
    if (s.islands) {
        net.set_clock_scale(3, 2.0);
        net.set_clock_scale(12, 3.0);
    }
    for (int i = 0; i < 40; ++i) net.step();
    net.drain(200);
    RunOutput out;
    out.metrics = net.metrics();
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        out.trace_counts[k] = counter.count(static_cast<TraceEventKind>(k));
    out.elapsed = net.elapsed_seconds();
    out.spread = net.tiles_knowing(MessageId{0, 0}); // the broadcast rumor
    return out;
}

RunOutput run_pi_scenario(const Scenario& s, std::uint64_t seed,
                          bool reference_encode, EngineSelect engine = {}) {
    GossipConfig config = s.config;
    config.reference_encode_path = reference_encode;
    GossipNetwork net(Topology::mesh(5, 5), config, s.faults, seed, engine);
    CountingSink counter;
    net.set_trace_sink(&counter);
    apps::PiDeployment d;
    auto& master = apps::deploy_pi(net, d);
    net.protect(d.master_tile);
    net.run_until([&master] { return master.done(); }, 2000);
    net.drain();
    RunOutput out;
    out.metrics = net.metrics();
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        out.trace_counts[k] = counter.count(static_cast<TraceEventKind>(k));
    out.elapsed = net.elapsed_seconds();
    return out;
}

RunOutput run_output(const Scenario& s, std::uint64_t seed,
                     bool reference_encode, EngineSelect engine = {}) {
    return s.use_pi_app ? run_pi_scenario(s, seed, reference_encode, engine)
                        : run_scenario(s, seed, reference_encode, engine);
}

void expect_metrics_equal(const NetworkMetrics& a, const NetworkMetrics& b,
                          const std::string& label) {
    EXPECT_EQ(a.rounds, b.rounds) << label;
    EXPECT_EQ(a.packets_sent, b.packets_sent) << label;
    EXPECT_EQ(a.bits_sent, b.bits_sent) << label;
    EXPECT_EQ(a.messages_created, b.messages_created) << label;
    EXPECT_EQ(a.deliveries, b.deliveries) << label;
    EXPECT_EQ(a.duplicates_ignored, b.duplicates_ignored) << label;
    EXPECT_EQ(a.crc_drops, b.crc_drops) << label;
    EXPECT_EQ(a.upsets_undetected, b.upsets_undetected) << label;
    EXPECT_EQ(a.overflow_drops, b.overflow_drops) << label;
    EXPECT_EQ(a.ttl_expired, b.ttl_expired) << label;
    EXPECT_EQ(a.skew_deferrals, b.skew_deferrals) << label;
    EXPECT_EQ(a.fec_corrected, b.fec_corrected) << label;
    EXPECT_EQ(a.fec_uncorrectable, b.fec_uncorrectable) << label;
    EXPECT_EQ(a.packets_per_round, b.packets_per_round) << label;
    EXPECT_EQ(a.bits_sent_by_tile, b.bits_sent_by_tile) << label;
    EXPECT_EQ(a.packets_by_link, b.packets_by_link) << label;
}

void expect_outputs_equal(const RunOutput& a, const RunOutput& b,
                          const std::string& label) {
    expect_metrics_equal(a.metrics, b.metrics, label);
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        EXPECT_EQ(a.trace_counts[k], b.trace_counts[k])
            << label << " trace kind "
            << to_string(static_cast<TraceEventKind>(k));
    EXPECT_EQ(a.elapsed, b.elapsed) << label; // bitwise, not approximate
    EXPECT_EQ(a.spread, b.spread) << label;
}

TEST(EngineEquivalence, SharedWireMatchesReferenceEncodePath) {
    for (const Scenario& s : scenarios()) {
        for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
            const auto label = s.name + " seed=" + std::to_string(seed);
            const auto shared = run_output(s, seed, false);
            const auto reference = run_output(s, seed, true);
            expect_outputs_equal(shared, reference, label);
        }
    }
}

TEST(EngineEquivalence, EventEngineMatchesLockstep) {
    // The tentpole contract: the sparse-activity engine reproduces the
    // lockstep engine bit-for-bit — metrics, trace counts, elapsed local
    // time and the spread curve — at every shard count.
    for (const Scenario& s : scenarios()) {
        for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
            const auto lockstep = run_output(s, seed, false);
            for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{8}}) {
                const auto label = s.name + " seed=" + std::to_string(seed) +
                                   " shards=" + std::to_string(shards);
                const auto event = run_output(
                    s, seed, false, EngineSelect{EngineKind::Event, shards});
                expect_outputs_equal(lockstep, event, label);
            }
        }
    }
}

TEST(EngineEquivalence, ScenariosActuallyExerciseTheHotPaths) {
    // Guard against the equivalence test silently testing nothing: the
    // grid must produce traffic, upsets, skew deferrals and FEC repairs.
    std::size_t packets = 0, crc_drops = 0, skew = 0, fec = 0;
    for (const Scenario& s : scenarios()) {
        const auto m = run_output(s, 1, false).metrics;
        packets += m.packets_sent;
        crc_drops += m.crc_drops;
        skew += m.skew_deferrals;
        fec += m.fec_corrected;
    }
    EXPECT_GT(packets, 1000u);
    EXPECT_GT(crc_drops, 0u);
    EXPECT_GT(skew, 0u);
    EXPECT_GT(fec, 0u);
}

} // namespace
} // namespace snoc
