#include "apps/producer_consumer.hpp"

#include <gtest/gtest.h>

namespace snoc::apps {
namespace {

GossipConfig config_with_p(double p) {
    GossipConfig c;
    c.forward_p = p;
    c.default_ttl = 30;
    return c;
}

TEST(ProducerConsumer, Fig33ScenarioDelivers) {
    // Producer on tile 6 (index 5), consumer on tile 12 (index 11).
    GossipNetwork net(Topology::mesh(4, 4), config_with_p(0.5),
                      FaultScenario::none(), 1);
    auto& consumer = make_producer_consumer(net, 5, 11, 1);
    const auto result =
        net.run_until([&consumer] { return consumer.complete(); }, 100);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(consumer.received_count(), 1u);
    EXPECT_EQ(consumer.received_items().front(), 0u);
}

TEST(ProducerConsumer, ConsumerCanReceiveBeforeFullBroadcast) {
    // Sec. 3.2.1: "The message reaches the Consumer before the full
    // broadcast is completed" — at delivery some tiles don't know it yet.
    int early = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        GossipNetwork net(Topology::mesh(4, 4), config_with_p(0.5),
                          FaultScenario::none(), seed);
        auto& consumer = make_producer_consumer(net, 5, 11, 1);
        net.run_until([&consumer] { return consumer.complete(); }, 100);
        if (net.tiles_knowing(MessageId{5, 0}) < 16) ++early;
    }
    EXPECT_GT(early, 0);
}

TEST(ProducerConsumer, FloodingLatencyEqualsManhattan) {
    GossipNetwork net(Topology::mesh(4, 4), config_with_p(1.0),
                      FaultScenario::none(), 2);
    auto& consumer = make_producer_consumer(net, 5, 11, 1);
    net.run_until([&consumer] { return consumer.complete(); }, 100);
    ASSERT_EQ(consumer.arrival_rounds().size(), 1u);
    EXPECT_EQ(consumer.arrival_rounds().front(),
              net.topology().manhattan(5, 11));
}

TEST(ProducerConsumer, StreamDeliversAllItemsInOrderTags) {
    GossipNetwork net(Topology::mesh(4, 4), config_with_p(1.0),
                      FaultScenario::none(), 3);
    auto& consumer = make_producer_consumer(net, 0, 15, 8, /*interval=*/2);
    const auto result =
        net.run_until([&consumer] { return consumer.complete(); }, 200);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(consumer.received_count(), 8u);
    // Flooding with a fixed source-destination pair preserves order.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(consumer.received_items()[i], i);
}

TEST(ProducerConsumer, SurvivesModerateUpsets) {
    FaultScenario s;
    s.p_upset = 0.3;
    int complete = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        GossipNetwork net(Topology::mesh(4, 4), config_with_p(0.5), s, seed);
        auto& consumer = make_producer_consumer(net, 5, 11, 4);
        if (net.run_until([&consumer] { return consumer.complete(); }, 300).completed)
            ++complete;
    }
    EXPECT_GE(complete, 9);
}

TEST(ProducerConsumer, ProducerStopsAfterItemCount) {
    GossipNetwork net(Topology::mesh(4, 4), config_with_p(1.0),
                      FaultScenario::none(), 4);
    auto& consumer = make_producer_consumer(net, 5, 11, 3, 1);
    for (int i = 0; i < 50; ++i) net.step();
    EXPECT_EQ(consumer.received_count(), 3u);
    EXPECT_EQ(net.metrics().messages_created, 3u);
}

} // namespace
} // namespace snoc::apps
