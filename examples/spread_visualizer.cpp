// Watch a rumor spread: an ASCII animation of Fig. 3-3.  One message is
// injected at a corner of the mesh and the example prints, round by
// round, which tiles know it ('#'), which one is the destination ('D'/'X'
// once reached) and which tiles have crashed ('.').
//
// Usage: spread_visualizer [width] [height] [p] [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/engine.hpp"
#include "core/tuning.hpp"

using namespace snoc;

namespace {

class Source final : public IpCore {
public:
    explicit Source(TileId dst) : dst_(dst) {}
    void on_start(TileContext& ctx) override {
        ctx.send(dst_, 0xF1, {std::byte{0xAB}});
    }
    void on_message(const Message&, TileContext&) override {}

private:
    TileId dst_;
};

class Sink final : public IpCore {
public:
    void on_message(const Message&, TileContext& ctx) override {
        if (!round_) round_ = ctx.round();
    }
    std::optional<Round> round() const { return round_; }

private:
    std::optional<Round> round_;
};

void draw(GossipNetwork& net, const MessageId& rumor, TileId src, TileId dst,
          bool delivered) {
    const auto& topo = net.topology();
    for (std::size_t y = 0; y < topo.height(); ++y) {
        std::cout << "    ";
        for (std::size_t x = 0; x < topo.width(); ++x) {
            const TileId t = topo.at(x, y);
            char c = '-';
            if (!net.tile_alive(t)) c = '.';
            else if (net.send_buffer(t).knows(rumor)) c = '#';
            if (t == src) c = 'S';
            if (t == dst) c = delivered ? 'X' : 'D';
            std::cout << c << ' ';
        }
        std::cout << '\n';
    }
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t width = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
    const std::size_t height = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;
    const double p = argc > 3 ? std::strtod(argv[3], nullptr) : 0.5;
    const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 9;

    const auto topo = Topology::mesh(width, height);
    const auto [src, dst] = farthest_pair(topo);

    GossipConfig config;
    config.forward_p = p;
    config.default_ttl = estimate_ttl(topo.manhattan(src, dst), p);
    FaultScenario scenario;
    scenario.p_tiles = 0.08; // a few dead tiles make the detours visible

    GossipNetwork net(topo, config, scenario, seed);
    auto sink = std::make_unique<Sink>();
    const Sink& s = *sink;
    net.attach(src, std::make_unique<Source>(dst));
    net.attach(dst, std::move(sink));
    net.protect(src);
    net.protect(dst);

    std::cout << "Rumor spreading on a " << width << "x" << height
              << " mesh, p = " << p << ", TTL = " << config.default_ttl
              << "  (S source, D destination, # informed, . crashed)\n";
    const MessageId rumor{src, 0};
    for (Round r = 0; r < config.default_ttl + 2u; ++r) {
        net.step();
        std::cout << "\nround " << net.round() << " — tiles informed: "
                  << net.tiles_knowing(rumor);
        if (s.round()) std::cout << "  [delivered in round " << *s.round() << "]";
        std::cout << '\n';
        draw(net, rumor, src, dst, s.round().has_value());
        if (net.quiescent()) break;
    }
    if (s.round()) {
        std::cout << "\ndelivered after " << *s.round() << " rounds (Manhattan "
                  << topo.manhattan(src, dst) << ", so "
                  << *s.round() - topo.manhattan(src, dst)
                  << " rounds of stochastic detour)\n";
        return 0;
    }
    std::cout << "\nthe rumor died before reaching the destination — rerun "
                 "with a higher p, larger TTL or another seed\n";
    return 1;
}
