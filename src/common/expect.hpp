// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations throw so
// tests can assert on them and simulations fail loudly instead of
// propagating garbage.
//
// Checks are *leveled* so the cost can be chosen per build
// (-DSNOC_CHECK_LEVEL=<n> at configure time, see the cache variable in
// the top-level CMakeLists.txt):
//
//   level 0  every check compiles out entirely — the perf build.  The
//            condition still has to parse (if constexpr discards it), so
//            checks cannot rot silently.
//   level 1  (default) API contracts (SNOC_EXPECT / SNOC_ENSURE), the
//            per-round hot-path protocol checks, and the adapters'
//            end-of-run conservation self-audits (see src/check/).
//   level 2  expensive per-round invariant sweeps — full-ledger audits
//            on every gossip round even without an attached
//            InvariantAuditor.  For debugging, not for figure runs.
//
// SNOC_CHECK(level, cond) is the general form; SNOC_EXPECT / SNOC_ENSURE
// remain as the level-1 pre/postcondition spellings.  Hot-path checks
// (anything executed per message per round) must use SNOC_CHECK so a
// level-0 build really is check-free — the historical always-on macros
// in per-round paths were the motivation for the levels.
#pragma once

#include <stdexcept>
#include <string>

#include "common/postmortem.hpp"

#ifndef SNOC_CHECK_LEVEL
#define SNOC_CHECK_LEVEL 1
#endif

namespace snoc {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    const std::string what = std::string(kind) + " failed: " + expr + " at " +
                             file + ":" + std::to_string(line);
    // Give an armed flight recorder its one chance to preserve the event
    // history while it still exists (common/postmortem.hpp); a no-op on
    // threads with no handler installed.
    postmortem::notify(kind, what);
    throw ContractViolation(what);
}
} // namespace detail

} // namespace snoc

// Leveled invariant check: active when the build's SNOC_CHECK_LEVEL is at
// least `level`; discarded by `if constexpr` otherwise (the condition is
// parsed but never evaluated, so a level-0 build pays nothing).
#define SNOC_CHECK(level, cond)                                                   \
    do {                                                                          \
        if constexpr (SNOC_CHECK_LEVEL >= (level)) {                              \
            if (!(cond)) ::snoc::detail::contract_fail("invariant", #cond,        \
                                                       __FILE__, __LINE__);       \
        }                                                                         \
    } while (false)

// Preconditions on function arguments / object state on entry (level 1).
#define SNOC_EXPECT(cond)                                                         \
    do {                                                                          \
        if constexpr (SNOC_CHECK_LEVEL >= 1) {                                    \
            if (!(cond)) ::snoc::detail::contract_fail("precondition", #cond,     \
                                                       __FILE__, __LINE__);       \
        }                                                                         \
    } while (false)

// Postconditions / invariants on exit (level 1).
#define SNOC_ENSURE(cond)                                                         \
    do {                                                                          \
        if constexpr (SNOC_CHECK_LEVEL >= 1) {                                    \
            if (!(cond)) ::snoc::detail::contract_fail("postcondition", #cond,    \
                                                       __FILE__, __LINE__);       \
        }                                                                         \
    } while (false)
