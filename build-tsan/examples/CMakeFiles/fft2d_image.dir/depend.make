# Empty dependencies file for fft2d_image.
# This may be replaced when dependencies are built.
