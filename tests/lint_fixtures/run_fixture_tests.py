#!/usr/bin/env python3
"""Self-test for snoc_lint: every fixture tree under tests/lint_fixtures/
must trip exactly its intended checker(s) — no more, no less — and the
exit status must match (1 with findings, 0 clean).  Each fixture is a
miniature repo (src/, scripts/, tests/) with an expect.json naming the
rule IDs it is built to fire.

Run directly or via ctest (label `lint`):

    python3 tests/lint_fixtures/run_fixture_tests.py
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent
TOOL = REPO_ROOT / "tools" / "snoc_lint"


def run_fixture(fixture: Path) -> list[str]:
    expect = json.loads((fixture / "expect.json").read_text())
    expected_rules = set(expect["rules"])
    proc = subprocess.run(
        [sys.executable, str(TOOL), "--root", str(fixture),
         "--no-baseline", "--format", "json"],
        capture_output=True, text=True, check=False)
    failures: list[str] = []
    if proc.returncode not in (0, 1):
        return [f"exit status {proc.returncode} (config error?): "
                f"{proc.stderr.strip()}"]
    try:
        findings = json.loads(proc.stdout)["findings"]
    except (json.JSONDecodeError, KeyError) as err:
        return [f"unparsable JSON report: {err}"]
    actual_rules = {f["rule"] for f in findings}
    if actual_rules != expected_rules:
        unexpected = sorted(actual_rules - expected_rules)
        missing = sorted(expected_rules - actual_rules)
        if unexpected:
            failures.append(f"unexpected rule(s) fired: {unexpected}")
        if missing:
            failures.append(f"expected rule(s) did not fire: {missing}")
    expected_exit = 1 if expected_rules else 0
    if proc.returncode != expected_exit:
        failures.append(
            f"exit status {proc.returncode}, expected {expected_exit}")
    return failures


def main() -> int:
    fixtures = sorted(d for d in FIXTURES.iterdir()
                      if d.is_dir() and (d / "expect.json").exists())
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 1
    failed = 0
    for fixture in fixtures:
        problems = run_fixture(fixture)
        status = "ok" if not problems else "FAIL"
        print(f"[{status}] {fixture.name}")
        for problem in problems:
            print(f"       {problem}")
        failed += bool(problems)
    print(f"{len(fixtures) - failed}/{len(fixtures)} fixtures passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
