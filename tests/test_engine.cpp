#include "core/engine.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

/// Sends one message to `dst` at round 0.
class OneShotSource final : public IpCore {
public:
    OneShotSource(TileId dst, std::uint16_t ttl = 0) : dst_(dst), ttl_(ttl) {}
    void on_start(TileContext& ctx) override {
        ctx.send(dst_, 0xBEEF, {std::byte{1}, std::byte{2}, std::byte{3}}, ttl_);
    }
    void on_message(const Message&, TileContext&) override {}

private:
    TileId dst_;
    std::uint16_t ttl_;
};

/// Records deliveries.
class Sink final : public IpCore {
public:
    void on_message(const Message& m, TileContext& ctx) override {
        ++count_;
        last_round_ = ctx.round();
        last_tag_ = m.tag;
    }
    std::size_t count() const { return count_; }
    Round last_round() const { return last_round_; }
    std::uint32_t last_tag() const { return last_tag_; }

private:
    std::size_t count_{0};
    Round last_round_{0};
    std::uint32_t last_tag_{0};
};

GossipConfig flooding_config() {
    GossipConfig c;
    c.forward_p = 1.0;
    c.default_ttl = 30;
    return c;
}

TEST(Engine, FloodingDeliversInManhattanDistanceRounds) {
    // p = 1 "is optimal with respect to latency, since the number of
    // intermediate hops ... is always equal to the Manhattan distance".
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 1);
    auto sink = std::make_unique<Sink>();
    Sink& s = *sink;
    net.attach(5, std::make_unique<OneShotSource>(11)); // tiles 6 -> 12
    net.attach(11, std::move(sink));
    const auto result = net.run_until([&s] { return s.count() > 0; }, 100);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(s.count(), 1u);
    // Message created in round 0, forwarded rounds 0,1,2 -> arrives for
    // round 3 = Manhattan distance.
    EXPECT_EQ(s.last_round(), net.topology().manhattan(5, 11));
}

TEST(Engine, StochasticDeliveryWhp) {
    // p = 0.5 should still deliver, just a little slower (Fig. 4-4).
    int delivered = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        GossipConfig c;
        c.forward_p = 0.5;
        c.default_ttl = 30;
        GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), seed);
        auto sink = std::make_unique<Sink>();
        Sink& s = *sink;
        net.attach(5, std::make_unique<OneShotSource>(11));
        net.attach(11, std::move(sink));
        const auto result = net.run_until([&s] { return s.count() > 0; }, 100);
        if (result.completed) ++delivered;
    }
    EXPECT_EQ(delivered, 20);
}

TEST(Engine, ZeroForwardProbabilityNeverDelivers) {
    GossipConfig c;
    c.forward_p = 0.0;
    GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), 2);
    auto sink = std::make_unique<Sink>();
    Sink& s = *sink;
    net.attach(5, std::make_unique<OneShotSource>(11));
    net.attach(11, std::move(sink));
    const auto result = net.run_until([&s] { return s.count() > 0; }, 50);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(net.metrics().packets_sent, 0u);
}

TEST(Engine, BroadcastReachesEveryLiveTileUnderFlooding) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 3);
    net.attach(0, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 10; ++i) net.step();
    EXPECT_EQ(net.tiles_knowing(MessageId{0, 0}), 16u);
}

TEST(Engine, TtlBoundsMessageLifetime) {
    GossipConfig c = flooding_config();
    c.default_ttl = 2;
    GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), 4);
    net.attach(0, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 20; ++i) net.step();
    // TTL 2 never crosses more than 2 hops from the corner.
    EXPECT_LT(net.tiles_knowing(MessageId{0, 0}), 16u);
    // And the network goes quiet: no packets in late rounds.
    const auto& per_round = net.metrics().packets_per_round;
    for (std::size_t r = 10; r < per_round.size(); ++r)
        EXPECT_EQ(per_round[r], 0u) << "round " << r;
    EXPECT_GT(net.metrics().ttl_expired, 0u);
}

TEST(Engine, QuiescentAfterTtlEverywhere) {
    GossipNetwork net(Topology::mesh(5, 5), flooding_config(), FaultScenario::none(), 5);
    net.attach(12, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 40; ++i) net.step();
    const auto& per_round = net.metrics().packets_per_round;
    // config ttl = 30: transmissions must cease by round 31.
    for (std::size_t r = 32; r < per_round.size(); ++r) EXPECT_EQ(per_round[r], 0u);
}

TEST(Engine, MetricsPacketsPerRoundSumsToTotal) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 6);
    net.attach(5, std::make_unique<OneShotSource>(11));
    for (int i = 0; i < 35; ++i) net.step();
    std::size_t sum = 0;
    for (auto n : net.metrics().packets_per_round) sum += n;
    EXPECT_EQ(sum, net.metrics().packets_sent);
    EXPECT_EQ(net.metrics().rounds, 35u);
    EXPECT_GT(net.metrics().bits_sent, 0u);
    EXPECT_EQ(net.metrics().bits_sent % net.metrics().packets_sent, 0u);
}

TEST(Engine, DuplicatesAreCountedNotRedelivered) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 7);
    auto sink = std::make_unique<Sink>();
    Sink& s = *sink;
    net.attach(5, std::make_unique<OneShotSource>(11));
    net.attach(11, std::move(sink));
    for (int i = 0; i < 35; ++i) net.step();
    EXPECT_EQ(s.count(), 1u); // delivered exactly once
    EXPECT_GT(net.metrics().duplicates_ignored, 0u);
}

TEST(Engine, DeadDestinationNeverDelivers) {
    FaultScenario scenario; // no random crashes; we force exact ones
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), scenario, 8);
    auto sink = std::make_unique<Sink>();
    Sink& s = *sink;
    net.attach(5, std::make_unique<OneShotSource>(11));
    net.attach(11, std::move(sink));
    net.protect(5);
    net.force_exact_tile_crashes(1);
    // Keep crashing until tile 11 is the victim (seeded, so deterministic).
    // Simpler: protect everything except 11.
    for (TileId t = 0; t < 16; ++t)
        if (t != 11 && t != 5) net.protect(t);
    const auto result = net.run_until([&s] { return s.count() > 0; }, 50);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(net.tile_alive(11));
}

TEST(Engine, CrashedTilesDoNotForward) {
    FaultScenario s;
    s.p_tiles = 0.99;
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), s, 9);
    net.protect(5);
    net.attach(5, std::make_unique<OneShotSource>(11));
    for (int i = 0; i < 10; ++i) net.step();
    // Only tile 5 (protected) is alive w.h.p.; its sends go into the void.
    EXPECT_LE(net.tiles_knowing(MessageId{5, 0}), 3u);
}

TEST(Engine, UpsetsProduceCrcDrops) {
    FaultScenario s;
    s.p_upset = 0.5;
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), s, 10);
    net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 20; ++i) net.step();
    EXPECT_GT(net.metrics().crc_drops, 0u);
    EXPECT_EQ(net.metrics().upsets_undetected, 0u);
}

TEST(Engine, SevereUpsetsDelayButRarelyStopDelivery) {
    // Sec. 4.1.3: "the algorithm does not give up and eventually
    // terminates with levels of data upsets as high as 90%".
    FaultScenario s;
    s.p_upset = 0.9;
    int delivered = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        GossipConfig c = flooding_config();
        c.default_ttl = 60;
        GossipNetwork net(Topology::mesh(4, 4), c, s, seed);
        auto sink = std::make_unique<Sink>();
        Sink& snk = *sink;
        net.attach(5, std::make_unique<OneShotSource>(11));
        net.attach(11, std::move(sink));
        if (net.run_until([&snk] { return snk.count() > 0; }, 300).completed)
            ++delivered;
    }
    EXPECT_GE(delivered, 8);
}

TEST(Engine, ForcedOverflowDropsPackets) {
    FaultScenario s;
    s.p_overflow = 0.6;
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), s, 11);
    net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 15; ++i) net.step();
    EXPECT_GT(net.metrics().overflow_drops, 0u);
}

TEST(Engine, SynchronisationErrorsCauseDeferrals) {
    FaultScenario s;
    s.sigma_synchr = 0.5;
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), s, 12);
    net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 25; ++i) net.step();
    EXPECT_GT(net.metrics().skew_deferrals, 0u);
}

TEST(Engine, NoSkewWithoutSigma) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 13);
    net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 25; ++i) net.step();
    EXPECT_EQ(net.metrics().skew_deferrals, 0u);
}

TEST(Engine, ElapsedTimeIsRoundsTimesTr) {
    GossipConfig c = flooding_config();
    c.timing.link_frequency_hz = 381e6;
    c.timing.packets_per_round = 1.0;
    c.timing.packet_bits = 381.0; // T_R = 1 us
    GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), 14);
    for (int i = 0; i < 10; ++i) net.step();
    EXPECT_NEAR(net.elapsed_seconds(), 10e-6, 1e-12);
}

TEST(Engine, DeterministicGivenSeed) {
    auto run = [](std::uint64_t seed) {
        GossipConfig c;
        c.forward_p = 0.5;
        FaultScenario s;
        s.p_upset = 0.2;
        GossipNetwork net(Topology::mesh(4, 4), c, s, seed);
        net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
        for (int i = 0; i < 20; ++i) net.step();
        return net.metrics().packets_sent;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43)); // overwhelmingly likely
}

TEST(Engine, ReplicatedSendWithIdDedups) {
    // Two tiles inject the same rumor id; the network treats them as one.
    class Replica final : public IpCore {
    public:
        explicit Replica(TileId dst) : dst_(dst) {}
        void on_start(TileContext& ctx) override {
            ctx.send_with_id(MessageId{TileContext::replica_origin(7), 0}, dst_,
                             0xD0D0, {std::byte{9}});
        }
        void on_message(const Message&, TileContext&) override {}

    private:
        TileId dst_;
    };
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 15);
    auto sink = std::make_unique<Sink>();
    Sink& s = *sink;
    net.attach(0, std::make_unique<Replica>(10));
    net.attach(3, std::make_unique<Replica>(10));
    net.attach(10, std::move(sink));
    for (int i = 0; i < 35; ++i) net.step();
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.last_tag(), 0xD0D0u);
}

TEST(Engine, ForwardCapacityThrottlesTile) {
    // A capacity-1 tile sends at most one packet per round.
    GossipNetwork unthrottled(Topology::mesh(4, 4), flooding_config(),
                              FaultScenario::none(), 16);
    unthrottled.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 5; ++i) unthrottled.step();

    GossipNetwork throttled(Topology::mesh(4, 4), flooding_config(),
                            FaultScenario::none(), 16);
    throttled.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (TileId t = 0; t < 16; ++t) throttled.set_forward_capacity(t, 1);
    for (int i = 0; i < 5; ++i) throttled.step();
    EXPECT_LT(throttled.metrics().packets_sent, unthrottled.metrics().packets_sent);
    for (auto n : throttled.metrics().packets_per_round) EXPECT_LE(n, 16u);
}

TEST(Engine, RouteFilterSuppressesPorts) {
    // Filter away every port of the source: nothing is ever transmitted.
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 17);
    net.attach(5, std::make_unique<OneShotSource>(11));
    net.set_route_filter(5, [](const Message&, TileId) { return false; });
    for (int i = 0; i < 10; ++i) net.step();
    EXPECT_EQ(net.metrics().packets_sent, 0u);
}

TEST(Engine, AttachAfterStartThrows) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 18);
    net.step();
    EXPECT_THROW(net.attach(0, std::make_unique<Sink>()), ContractViolation);
    EXPECT_THROW(net.protect(0), ContractViolation);
}

TEST(Engine, RunUntilRespectsMaxRounds) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 19);
    const auto result = net.run_until([] { return false; }, 7);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.rounds, 7u);
}

TEST(Engine, RunUntilImmediatePredicate) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 20);
    const auto result = net.run_until([] { return true; }, 7);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.rounds, 0u);
}

TEST(Engine, PerLinkAccountingSumsToTotal) {
    GossipNetwork net(Topology::mesh(4, 4), flooding_config(), FaultScenario::none(), 40);
    net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 20; ++i) net.step();
    const auto& m = net.metrics();
    ASSERT_EQ(m.packets_by_link.size(), net.topology().link_count());
    std::size_t sum = 0;
    for (auto n : m.packets_by_link) sum += n;
    EXPECT_EQ(sum, m.packets_sent);
}

TEST(Engine, GossipSpreadsTrafficEvenly) {
    // Sec. 3.3.1: gossip "spreads the traffic onto all the links".  For a
    // central broadcast on a mesh, every interior link should carry
    // comparable load: the hotspot factor stays small.
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 20;
    GossipNetwork net(Topology::mesh(5, 5), c, FaultScenario::none(), 41);
    net.attach(12, std::make_unique<OneShotSource>(kBroadcast));
    net.drain(100);
    EXPECT_LT(net.metrics().link_hotspot_factor(), 3.0);
    // And every link saw at least some traffic.
    std::size_t idle_links = 0;
    for (auto n : net.metrics().packets_by_link)
        if (n == 0) ++idle_links;
    EXPECT_EQ(idle_links, 0u);
}

TEST(Engine, SecdedModeDeliversAndRepairs) {
    FaultScenario s;
    s.p_upset = 0.6; // bursty but mostly 1-2 bit flips per packet
    GossipConfig c = flooding_config();
    c.link_protection = LinkProtection::SecdedCorrect;
    GossipNetwork net(Topology::mesh(4, 4), c, s, 30);
    auto sink = std::make_unique<Sink>();
    Sink& snk = *sink;
    net.attach(5, std::make_unique<OneShotSource>(11));
    net.attach(11, std::move(sink));
    const auto r = net.run_until([&snk] { return snk.count() > 0; }, 200);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(net.metrics().fec_corrected, 0u);
}

TEST(Engine, SecdedReducesEffectiveLossVsCrc) {
    // Same upset rate: FEC repairs most packets that CRC mode would drop.
    auto loss_fraction = [](LinkProtection prot) {
        FaultScenario s;
        s.p_upset = 0.5;
        GossipConfig c;
        c.forward_p = 1.0;
        c.default_ttl = 20;
        c.link_protection = prot;
        GossipNetwork net(Topology::mesh(4, 4), c, s, 31);
        net.attach(5, std::make_unique<OneShotSource>(kBroadcast));
        for (int i = 0; i < 20; ++i) net.step();
        const auto& m = net.metrics();
        const double dropped = static_cast<double>(m.crc_drops + m.fec_uncorrectable);
        return dropped / static_cast<double>(m.packets_sent);
    };
    // With ~2 flipped bits per upset packet, FEC only loses the packets
    // where both flips land in the same 64-bit word.
    EXPECT_LT(loss_fraction(LinkProtection::SecdedCorrect),
              0.5 * loss_fraction(LinkProtection::CrcDetect));
}

TEST(Engine, SecdedCostsWireOverhead) {
    auto bits_per_packet = [](LinkProtection prot) {
        GossipConfig c = flooding_config();
        c.link_protection = prot;
        GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), 32);
        net.attach(5, std::make_unique<OneShotSource>(11));
        for (int i = 0; i < 5; ++i) net.step();
        return net.metrics().average_packet_bits();
    };
    const double crc = bits_per_packet(LinkProtection::CrcDetect);
    const double fec = bits_per_packet(LinkProtection::SecdedCorrect);
    // 12.5% Hamming overhead + padding/length framing; framing dominates
    // for this test's tiny packets.
    EXPECT_GT(fec, crc * 1.1);
    EXPECT_LT(fec, crc * 1.6);
}

TEST(Engine, SpreadStopOnDeliveryCutsTraffic) {
    auto packets_with = [](bool stop) {
        GossipConfig c;
        c.forward_p = 0.5;
        c.default_ttl = 20;
        c.stop_spread_on_delivery = stop;
        GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), 21);
        auto sink = std::make_unique<Sink>();
        Sink& s = *sink;
        net.attach(5, std::make_unique<OneShotSource>(11));
        net.attach(11, std::move(sink));
        net.run_until([&s] { return s.count() > 0; }, 200);
        net.drain();
        return std::pair<std::size_t, std::size_t>(net.metrics().packets_sent,
                                                   s.count());
    };
    const auto [packets_stop, delivered_stop] = packets_with(true);
    const auto [packets_full, delivered_full] = packets_with(false);
    EXPECT_EQ(delivered_stop, 1u);
    EXPECT_EQ(delivered_full, 1u);
    EXPECT_LT(packets_stop, packets_full / 2);
}

TEST(Engine, SpreadStopLeavesBroadcastsAlone) {
    GossipConfig c;
    c.forward_p = 1.0;
    c.default_ttl = 30;
    c.stop_spread_on_delivery = true;
    GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), 22);
    net.attach(0, std::make_unique<OneShotSource>(kBroadcast));
    for (int i = 0; i < 10; ++i) net.step();
    EXPECT_EQ(net.tiles_knowing(MessageId{0, 0}), 16u);
}

// Fault-free latency is monotone-ish in p: sweep p and compare extremes.
class ForwardProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ForwardProbabilitySweep, DeliversOnIntactMesh) {
    GossipConfig c;
    c.forward_p = GetParam();
    c.default_ttl = 40;
    int delivered = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        GossipNetwork net(Topology::mesh(4, 4), c, FaultScenario::none(), seed);
        auto sink = std::make_unique<Sink>();
        Sink& s = *sink;
        net.attach(0, std::make_unique<OneShotSource>(15));
        net.attach(15, std::move(sink));
        if (net.run_until([&s] { return s.count() > 0; }, 200).completed) ++delivered;
    }
    EXPECT_GE(delivered, 9);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ForwardProbabilitySweep,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

} // namespace
} // namespace snoc
