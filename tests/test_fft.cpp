#include "apps/fft.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::apps {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
    snoc::RngStream rng(seed);
    std::vector<Complex> v(n);
    for (auto& x : v) x = Complex(2.0 * rng.uniform() - 1.0, 2.0 * rng.uniform() - 1.0);
    return v;
}

double max_err(const std::vector<Complex>& a, const std::vector<Complex>& b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

TEST(Fft, SizeOneIsIdentity) {
    std::vector<Complex> v{Complex(3.0, -2.0)};
    fft(v);
    EXPECT_DOUBLE_EQ(v[0].real(), 3.0);
    EXPECT_DOUBLE_EQ(v[0].imag(), -2.0);
}

TEST(Fft, RejectsNonPowerOfTwo) {
    std::vector<Complex> v(6);
    EXPECT_THROW(fft(v), snoc::ContractViolation);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
    std::vector<Complex> v(16, Complex(0.0, 0.0));
    v[0] = Complex(1.0, 0.0);
    fft(v);
    for (const auto& x : v) {
        EXPECT_NEAR(x.real(), 1.0, 1e-12);
        EXPECT_NEAR(x.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, SingleToneConcentrates) {
    const std::size_t n = 64;
    std::vector<Complex> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = Complex(std::cos(2.0 * std::numbers::pi * 5.0 * i / n), 0.0);
    fft(v);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == 5 || k == n - 5) {
            EXPECT_NEAR(std::abs(v[k]), n / 2.0, 1e-9);
        } else {
            EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-9);
        }
    }
}

TEST(Fft, MatchesDirectDft) {
    for (std::size_t n : {2u, 4u, 8u, 32u, 128u}) {
        auto v = random_signal(n, n);
        const auto expected = dft_direct(v);
        fft(v);
        EXPECT_LT(max_err(v, expected), 1e-9 * static_cast<double>(n)) << "n=" << n;
    }
}

TEST(Fft, InverseRoundtrip) {
    auto v = random_signal(256, 9);
    const auto original = v;
    fft(v);
    ifft(v);
    EXPECT_LT(max_err(v, original), 1e-10);
}

TEST(Fft, Linearity) {
    auto a = random_signal(64, 1);
    auto b = random_signal(64, 2);
    std::vector<Complex> sum(64);
    for (std::size_t i = 0; i < 64; ++i) sum[i] = a[i] + 2.0 * b[i];
    fft(a);
    fft(b);
    fft(sum);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_LT(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 1e-9);
}

TEST(Fft, ParsevalEnergyConservation) {
    auto v = random_signal(128, 5);
    double time_energy = 0.0;
    for (const auto& x : v) time_energy += std::norm(x);
    fft(v);
    double freq_energy = 0.0;
    for (const auto& x : v) freq_energy += std::norm(x);
    EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-8);
}

TEST(Fft2d, MatchesDirect2dDft) {
    ComplexImage img = ComplexImage::zeros(8, 8);
    snoc::RngStream rng(3);
    for (auto& c : img.data) c = Complex(rng.uniform(), rng.uniform());
    const auto fast = fft2d(img);
    const auto direct = dft2d_direct(img);
    EXPECT_LT(max_abs_diff(fast, direct), 1e-9);
}

TEST(Fft2d, RectangularImages) {
    ComplexImage img = ComplexImage::zeros(16, 4);
    snoc::RngStream rng(4);
    for (auto& c : img.data) c = Complex(rng.uniform() - 0.5, 0.0);
    EXPECT_LT(max_abs_diff(fft2d(img), dft2d_direct(img)), 1e-9);
}

TEST(Decimate, SubimagesPickAlternatingPixels) {
    ComplexImage img = ComplexImage::zeros(4, 4);
    for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x)
            img.at(x, y) = Complex(static_cast<double>(10 * y + x), 0.0);
    const auto quads = decimate2d(img);
    // quad index b*2+a holds x(2*m1+a, 2*m2+b).
    EXPECT_DOUBLE_EQ(quads[0].at(0, 0).real(), 0.0);   // (0,0)
    EXPECT_DOUBLE_EQ(quads[1].at(0, 0).real(), 1.0);   // (1,0)
    EXPECT_DOUBLE_EQ(quads[2].at(0, 0).real(), 10.0);  // (0,1)
    EXPECT_DOUBLE_EQ(quads[3].at(0, 0).real(), 11.0);  // (1,1)
    EXPECT_DOUBLE_EQ(quads[0].at(1, 1).real(), 22.0);  // (2,2)
}

TEST(DecimateCombine, EqualsFullTransform) {
    // The butterfly the Fig. 4-3 tree distributes: FFT2 of quadrants +
    // combine == FFT2 of the whole image.
    for (std::size_t n : {4u, 8u, 16u}) {
        ComplexImage img = ComplexImage::zeros(n, n);
        snoc::RngStream rng(n);
        for (auto& c : img.data) c = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
        auto quads = decimate2d(img);
        std::array<ComplexImage, 4> transformed;
        for (std::size_t q = 0; q < 4; ++q) transformed[q] = fft2d(quads[q]);
        const auto combined = combine2d(transformed);
        EXPECT_LT(max_abs_diff(combined, fft2d(img)), 1e-8) << "n=" << n;
    }
}

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, RoundtripAndOracle) {
    const std::size_t n = GetParam();
    auto v = random_signal(n, n * 13 + 1);
    const auto original = v;
    const auto oracle = dft_direct(v);
    fft(v);
    EXPECT_LT(max_err(v, oracle), 1e-8);
    ifft(v);
    EXPECT_LT(max_err(v, original), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep, ::testing::Values(2, 4, 16, 64, 256, 512));

} // namespace
} // namespace snoc::apps
