// The Master - Slave case study of Sec. 4.1.1 (Fig. 4-2): computing pi by
// distributing the Eq. 4 partial sums over eight slaves on a 5x5 NoC.
//
// The example sweeps the forwarding probability p to expose the
// latency <-> energy trade-off, then crashes slave tiles to demonstrate
// that duplicated slaves keep the computation alive.
//
// Usage: pi_master_slave [seed]
#include <cstdlib>
#include <iostream>
#include <numbers>

#include "apps/master_slave_pi.hpp"
#include "common/table.hpp"
#include "energy/energy.hpp"

using namespace snoc;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
    const auto tech = Technology::cmos_025um();

    std::cout << "Master-Slave pi computation on a 5x5 stochastic NoC\n"
              << "reference pi = " << std::numbers::pi << "\n\n";

    Table sweep({"p", "latency [rounds]", "packets", "energy [J]", "pi error"});
    for (double p : {1.0, 0.75, 0.5, 0.25}) {
        GossipConfig config;
        config.forward_p = p;
        config.default_ttl = 30;
        GossipNetwork net(Topology::mesh(5, 5), config, FaultScenario::none(), seed);
        apps::PiDeployment d;
        auto& master = apps::deploy_pi(net, d);
        const auto run = net.run_until([&master] { return master.done(); }, 1000);
        net.drain(); // count the energy of the full broadcast lifetime
        const double energy =
            static_cast<double>(net.metrics().bits_sent) * tech.link_ebit_joules;
        sweep.add_row({format_number(p, 2), std::to_string(run.rounds),
                       std::to_string(net.metrics().packets_sent),
                       format_sci(energy, 2),
                       run.completed
                           ? format_sci(std::abs(master.pi() - std::numbers::pi), 1)
                           : "DNF"});
    }
    std::cout << "latency/energy trade-off (the designer's knob, Sec. 4.1.3):\n";
    sweep.print(std::cout);

    // Fault-tolerance by duplication: crash 3 primary slaves.
    std::cout << "\ncrashing 3 primary slave tiles, slaves duplicated:\n";
    GossipConfig config;
    config.forward_p = 0.5;
    config.default_ttl = 40;
    GossipNetwork net(Topology::mesh(5, 5), config, FaultScenario::none(), seed);
    apps::PiDeployment d;
    d.duplicate_slaves = true;
    auto& master = apps::deploy_pi(net, d);
    // Protect the master and the replica ring; let primaries crash.
    net.protect(d.master_tile);
    for (TileId t : {0u, 2u, 4u, 10u, 14u, 20u, 22u, 24u}) net.protect(t);
    for (TileId t : {7u, 13u, 16u}) { // spare the remaining primaries too
        net.protect(t);
    }
    net.force_exact_tile_crashes(3);
    const auto run = net.run_until([&master] { return master.done(); }, 1000);
    std::cout << (run.completed ? "completed" : "DID NOT FINISH") << " in "
              << run.rounds << " rounds; ";
    if (run.completed)
        std::cout << "pi = " << master.pi()
                  << " (error " << std::abs(master.pi() - std::numbers::pi) << ")\n";
    std::cout << "dead tiles this run: " << net.crashes().dead_tile_count() << "\n";
    return run.completed ? 0 : 1;
}
