#include "apps/mdct.hpp"

#include <cmath>
#include <numbers>

#include "common/expect.hpp"

namespace snoc::apps {

Mdct::Mdct(std::size_t n) : n_(n) {
    SNOC_EXPECT(n > 0);
    window_.resize(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i)
        window_[i] = std::sin(std::numbers::pi / (2.0 * static_cast<double>(n)) *
                              (static_cast<double>(i) + 0.5));
}

double Mdct::window(std::size_t i) const {
    SNOC_EXPECT(i < window_.size());
    return window_[i];
}

std::vector<double> Mdct::forward(const std::vector<double>& x) const {
    SNOC_EXPECT(x.size() == 2 * n_);
    const double nd = static_cast<double>(n_);
    std::vector<double> out(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        double acc = 0.0;
        for (std::size_t n = 0; n < 2 * n_; ++n) {
            const double angle = std::numbers::pi / nd *
                                 (static_cast<double>(n) + 0.5 + nd / 2.0) *
                                 (static_cast<double>(k) + 0.5);
            acc += window_[n] * x[n] * std::cos(angle);
        }
        out[k] = acc;
    }
    return out;
}

std::vector<double> Mdct::inverse(const std::vector<double>& coeffs) const {
    SNOC_EXPECT(coeffs.size() == n_);
    const double nd = static_cast<double>(n_);
    std::vector<double> out(2 * n_);
    for (std::size_t n = 0; n < 2 * n_; ++n) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n_; ++k) {
            const double angle = std::numbers::pi / nd *
                                 (static_cast<double>(n) + 0.5 + nd / 2.0) *
                                 (static_cast<double>(k) + 0.5);
            acc += coeffs[k] * std::cos(angle);
        }
        out[n] = 2.0 / nd * acc * window_[n];
    }
    return out;
}

std::vector<std::vector<double>> mdct_analyze(const Mdct& mdct,
                                              const std::vector<double>& signal) {
    const std::size_t n = mdct.size();
    SNOC_EXPECT(signal.size() % n == 0);
    const std::size_t hops = signal.size() / n;
    std::vector<double> padded(signal.size() + 2 * n, 0.0);
    std::copy(signal.begin(), signal.end(), padded.begin() + static_cast<long>(n));

    std::vector<std::vector<double>> frames;
    frames.reserve(hops + 1);
    for (std::size_t h = 0; h <= hops; ++h) {
        std::vector<double> window(padded.begin() + static_cast<long>(h * n),
                                   padded.begin() + static_cast<long>(h * n + 2 * n));
        frames.push_back(mdct.forward(window));
    }
    return frames;
}

std::vector<double> mdct_synthesize(const Mdct& mdct,
                                    const std::vector<std::vector<double>>& frames) {
    const std::size_t n = mdct.size();
    SNOC_EXPECT(!frames.empty());
    std::vector<double> out((frames.size() + 1) * n, 0.0);
    for (std::size_t h = 0; h < frames.size(); ++h) {
        const auto chunk = mdct.inverse(frames[h]);
        for (std::size_t i = 0; i < 2 * n; ++i) out[h * n + i] += chunk[i];
    }
    // Trim the leading history hop so index i aligns with signal[i].
    return {out.begin() + static_cast<long>(n),
            out.begin() + static_cast<long>(frames.size() * n)};
}

} // namespace snoc::apps
