#include "apps/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace snoc::apps {

std::size_t coded_bits_of(std::int32_t value) {
    const std::uint32_t mag = static_cast<std::uint32_t>(value < 0 ? -value : value);
    if (mag == 0) return 1; // a zero line costs one bit
    std::size_t magnitude_bits = 0;
    std::uint32_t v = mag;
    while (v != 0) {
        ++magnitude_bits;
        v >>= 1;
    }
    // unary length prefix + magnitude + sign
    return magnitude_bits + magnitude_bits + 1;
}

std::size_t coded_bits_of(const std::vector<std::int32_t>& values) {
    std::size_t total = 0;
    for (std::int32_t v : values) total += coded_bits_of(v);
    return total;
}

std::vector<double> dequantize(const QuantizedFrame& frame) {
    std::vector<double> out(frame.values.size());
    for (std::size_t i = 0; i < frame.values.size(); ++i) {
        const std::size_t band = frame.band_scale.empty()
                                     ? 0
                                     : i * frame.band_scale.size() / frame.values.size();
        const double scale = frame.band_scale.empty() ? 1.0 : frame.band_scale[band];
        out[i] = static_cast<double>(frame.values[i]) * frame.global_gain * scale;
    }
    return out;
}

IterativeQuantizer::IterativeQuantizer(std::vector<std::size_t> bands,
                                       std::size_t band_count)
    : bands_(std::move(bands)), band_count_(band_count) {
    SNOC_EXPECT(band_count > 0);
    for (std::size_t b : bands_) SNOC_EXPECT(b < band_count);
}

QuantizedFrame IterativeQuantizer::quantize(const std::vector<double>& lines,
                                            const PsychoAnalysis& psycho,
                                            std::size_t budget_bits,
                                            std::uint32_t frame_index) const {
    SNOC_EXPECT(lines.size() == bands_.size());
    SNOC_EXPECT(psycho.band_threshold.size() == band_count_);

    QuantizedFrame frame;
    frame.frame_index = frame_index;
    // Noise shaping: coarser steps where the masking threshold is high.
    frame.band_scale.resize(band_count_);
    for (std::size_t b = 0; b < band_count_; ++b)
        frame.band_scale[b] = std::sqrt(std::max(psycho.band_threshold[b], 1e-12));

    // Outer loop: grow the global gain (coarsen) until the frame fits.
    double gain = 1.0 / 1024.0; // start fine: ~10 bits of headroom
    for (int iter = 0; iter < 64; ++iter) {
        frame.values.resize(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const double step = gain * frame.band_scale[bands_[i]];
            frame.values[i] = static_cast<std::int32_t>(std::lround(lines[i] / step));
        }
        frame.coded_bits = coded_bits_of(frame.values);
        if (frame.coded_bits <= budget_bits) {
            frame.global_gain = gain;
            return frame;
        }
        gain *= 2.0;
    }
    // Pathological budget: emit silence (all zeros always fits any budget
    // >= lines.size(); smaller budgets are a caller bug).
    SNOC_EXPECT(budget_bits >= lines.size());
    std::fill(frame.values.begin(), frame.values.end(), 0);
    frame.coded_bits = coded_bits_of(frame.values);
    frame.global_gain = gain;
    return frame;
}

BitReservoir::BitReservoir(std::size_t capacity_bits) : capacity_(capacity_bits) {}

void BitReservoir::settle(std::size_t frame_budget, std::size_t used) {
    SNOC_EXPECT(used <= frame_budget + level_);
    if (used <= frame_budget) {
        level_ = std::min(capacity_, level_ + (frame_budget - used));
    } else {
        level_ -= used - frame_budget;
    }
}

} // namespace snoc::apps
