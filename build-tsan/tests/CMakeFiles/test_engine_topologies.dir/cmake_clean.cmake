file(REMOVE_RECURSE
  "CMakeFiles/test_engine_topologies.dir/test_engine_topologies.cpp.o"
  "CMakeFiles/test_engine_topologies.dir/test_engine_topologies.cpp.o.d"
  "test_engine_topologies"
  "test_engine_topologies.pdb"
  "test_engine_topologies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
