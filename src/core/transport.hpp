// Reliable transport over stochastic communication.
//
// Sec. 4.2.3: "If ... the application requires strong reliability
// guarantees, these can be implemented by a higher level protocol built
// on top of the stochastic communication."  This module is that protocol:
// an exactly-once, in-order byte-message channel between two tiles.
//
//   * The sender assigns sequence numbers and keeps a window of unacked
//     segments; a segment unacknowledged for `retransmit_after` rounds is
//     re-injected as a *fresh rumor* (new gossip identity, so the network
//     spreads it again rather than dedup-ing it away).
//   * The receiver delivers in order through a callback, buffers
//     out-of-order segments, and gossips back cumulative ACKs.  ACKs ride
//     the same unreliable gossip — loss only costs a retransmission.
//
// The protocol objects are embedded into IP cores: forward `on_message` /
// `on_round` to them and use `send()`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/ip_core.hpp"

namespace snoc {

inline constexpr std::uint32_t kReliableDataTagBase = 0x524C0000; // 'RL'
inline constexpr std::uint32_t kReliableAckTagBase = 0x524B0000;  // 'RK'

struct ReliablePolicy {
    Round retransmit_after{8}; ///< rounds without ACK before re-injection.
    std::size_t window{32};    ///< max unacked segments in flight.
    std::uint16_t ttl{0};      ///< base per-segment TTL (0 = network default).
    /// Each retransmission doubles the TTL up to this cap: if the base
    /// lifetime cannot carry a rumor across the chip under the current
    /// fault levels, escalation eventually can (no retransmission count
    /// fixes an undersized TTL).
    std::uint16_t ttl_cap{128};
};

class ReliableSender {
public:
    /// `channel` distinguishes independent streams (0..0xFFFF).
    ReliableSender(TileId peer, std::uint16_t channel, ReliablePolicy policy = {});

    /// Queue a payload; it is transmitted as soon as the window allows.
    /// Returns the assigned sequence number.
    std::uint32_t send(TileContext& ctx, std::vector<std::byte> payload);

    /// Feed every message the owning IP receives; consumes matching ACKs.
    void on_message(const Message& message, TileContext& ctx);

    /// Call once per round: transmits window slots and retransmits stale
    /// segments.
    void on_round(TileContext& ctx);

    std::size_t unacked() const { return in_flight_.size(); }
    std::size_t queued() const { return queue_.size(); }
    bool idle() const { return in_flight_.empty() && queue_.empty(); }
    std::size_t retransmissions() const { return retransmissions_; }
    std::uint32_t next_sequence() const { return next_seq_; }

private:
    struct Segment {
        std::vector<std::byte> payload;
        Round next_retry{0};
        std::uint32_t attempts{0};
    };

    void transmit(TileContext& ctx, std::uint32_t seq, Segment& segment);

    TileId peer_;
    std::uint16_t channel_;
    ReliablePolicy policy_;
    std::uint32_t next_seq_{0};
    std::map<std::uint32_t, Segment> in_flight_; ///< sent, not yet acked.
    std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> queue_;
    std::size_t retransmissions_{0};
};

class ReliableReceiver {
public:
    using DeliverFn = std::function<void(std::uint32_t seq, std::vector<std::byte>)>;

    ReliableReceiver(TileId peer, std::uint16_t channel, DeliverFn deliver);

    /// Feed every message the owning IP receives; consumes matching data
    /// segments and answers with a cumulative ACK rumor.
    void on_message(const Message& message, TileContext& ctx);

    /// Next in-order sequence the receiver is waiting for.
    std::uint32_t expected() const { return expected_; }
    std::size_t reorder_buffered() const { return out_of_order_.size(); }

private:
    void ack(TileContext& ctx);

    TileId peer_;
    std::uint16_t channel_;
    DeliverFn deliver_;
    std::uint32_t expected_{0};
    /// Re-ACKs issued without forward progress; escalates the ACK TTL the
    /// same way the sender escalates data TTLs (a stale retransmission
    /// means our previous ACK died on the way back).
    std::uint32_t stale_acks_{0};
    std::map<std::uint32_t, std::vector<std::byte>> out_of_order_;
};

} // namespace snoc
