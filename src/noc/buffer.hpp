// Bounded message buffers (Fig. 3-5: "On the four edges of the tile, there
// exist buffers to hold the messages").  Finite capacity is what produces
// the buffer-overflow failure mode of Chapter 2: "if such an overflow
// happens, the respective tile will lose some of the messages (the oldest
// ones are dropped first)".
#pragma once

#include <cstddef>
#include <deque>

#include "common/expect.hpp"

namespace snoc {

template <typename T>
class BoundedBuffer {
public:
    explicit BoundedBuffer(std::size_t capacity) : capacity_(capacity) {
        SNOC_EXPECT(capacity > 0);
    }

    /// Append; if full, the *oldest* entry is dropped first (thesis policy)
    /// and the overflow counter is bumped.  Returns true iff nothing was lost.
    bool push(T value) {
        bool lossless = true;
        if (items_.size() == capacity_) {
            items_.pop_front();
            ++overflow_drops_;
            lossless = false;
        }
        items_.push_back(std::move(value));
        return lossless;
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /// Number of entries lost to overflow since construction/clear.
    std::size_t overflow_drops() const { return overflow_drops_; }

    const T& front() const {
        SNOC_EXPECT(!items_.empty());
        return items_.front();
    }

    T pop() {
        SNOC_EXPECT(!items_.empty());
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    void clear() { items_.clear(); }

    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }

private:
    std::size_t capacity_;
    std::deque<T> items_;
    std::size_t overflow_drops_{0};
};

} // namespace snoc
