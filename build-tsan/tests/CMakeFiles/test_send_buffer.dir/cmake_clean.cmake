file(REMOVE_RECURSE
  "CMakeFiles/test_send_buffer.dir/test_send_buffer.cpp.o"
  "CMakeFiles/test_send_buffer.dir/test_send_buffer.cpp.o.d"
  "test_send_buffer"
  "test_send_buffer.pdb"
  "test_send_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_send_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
