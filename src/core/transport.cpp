#include "core/transport.hpp"

#include "common/expect.hpp"

namespace snoc {

namespace {

std::uint32_t data_tag(std::uint16_t channel) { return kReliableDataTagBase | channel; }
std::uint32_t ack_tag(std::uint16_t channel) { return kReliableAckTagBase | channel; }

std::vector<std::byte> frame_segment(std::uint32_t seq,
                                     const std::vector<std::byte>& payload) {
    std::vector<std::byte> out;
    out.reserve(4 + payload.size());
    for (std::size_t i = 0; i < 4; ++i)
        out.push_back(static_cast<std::byte>((seq >> (8 * i)) & 0xFF));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::uint32_t read_u32(const std::vector<std::byte>& bytes) {
    SNOC_EXPECT(bytes.size() >= 4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    return v;
}

} // namespace

// --------------------------------------------------------------------------
ReliableSender::ReliableSender(TileId peer, std::uint16_t channel,
                               ReliablePolicy policy)
    : peer_(peer), channel_(channel), policy_(policy) {
    SNOC_EXPECT(policy.retransmit_after >= 1);
    SNOC_EXPECT(policy.window >= 1);
}

std::uint32_t ReliableSender::send(TileContext& ctx, std::vector<std::byte> payload) {
    const std::uint32_t seq = next_seq_++;
    if (in_flight_.size() < policy_.window) {
        Segment segment{std::move(payload), 0, 0};
        transmit(ctx, seq, segment);
        in_flight_.emplace(seq, std::move(segment));
    } else {
        queue_.emplace_back(seq, std::move(payload));
    }
    return seq;
}

void ReliableSender::transmit(TileContext& ctx, std::uint32_t seq, Segment& segment) {
    if (segment.attempts > 0) ++retransmissions_;
    // TTL escalation: double the rumor lifetime per retransmission so
    // even a badly undersized base TTL eventually crosses the chip.
    const std::uint32_t base = policy_.ttl != 0 ? policy_.ttl : ctx.default_ttl();
    const std::uint32_t shift = std::min<std::uint32_t>(segment.attempts, 7);
    const auto ttl = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(base << shift, policy_.ttl_cap));
    // Plain ctx.send assigns a fresh gossip identity, so the network
    // treats the retransmission as a new rumor and spreads it anew.
    ctx.send(peer_, data_tag(channel_), frame_segment(seq, segment.payload), ttl);
    // Back off until the current attempt's rumor has died: retransmitting
    // while copies are still spreading only burns bandwidth.
    segment.next_retry =
        ctx.round() + std::max<Round>(policy_.retransmit_after, ttl);
    ++segment.attempts;
}

void ReliableSender::on_message(const Message& message, TileContext&) {
    if (message.tag != ack_tag(channel_) || message.source != peer_) return;
    // Cumulative ACK: everything below `upto` has been delivered in order.
    const std::uint32_t upto = read_u32(message.payload);
    in_flight_.erase(in_flight_.begin(), in_flight_.lower_bound(upto));
}

void ReliableSender::on_round(TileContext& ctx) {
    // Promote queued segments into freed window slots.
    while (!queue_.empty() && in_flight_.size() < policy_.window) {
        auto [seq, payload] = std::move(queue_.front());
        queue_.erase(queue_.begin());
        Segment segment{std::move(payload), 0, 0};
        transmit(ctx, seq, segment);
        in_flight_.emplace(seq, std::move(segment));
    }
    // Retransmit stale segments.
    for (auto& [seq, segment] : in_flight_) {
        if (ctx.round() >= segment.next_retry) transmit(ctx, seq, segment);
    }
}

// --------------------------------------------------------------------------
ReliableReceiver::ReliableReceiver(TileId peer, std::uint16_t channel,
                                   DeliverFn deliver)
    : peer_(peer), channel_(channel), deliver_(std::move(deliver)) {
    SNOC_EXPECT(deliver_ != nullptr);
}

void ReliableReceiver::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != data_tag(channel_) || message.source != peer_) return;
    const std::uint32_t seq = read_u32(message.payload);
    std::vector<std::byte> payload(message.payload.begin() + 4,
                                   message.payload.end());
    if (seq < expected_) {
        // Stale retransmission of something already delivered: our ACK
        // evidently died on the way back — re-ACK with a longer lifetime.
        ++stale_acks_;
        ack(ctx);
        return;
    }
    out_of_order_.emplace(seq, std::move(payload)); // no-op if duplicate
    // Drain the in-order prefix.
    auto it = out_of_order_.find(expected_);
    bool progressed = false;
    while (it != out_of_order_.end()) {
        deliver_(expected_, std::move(it->second));
        out_of_order_.erase(it);
        ++expected_;
        progressed = true;
        it = out_of_order_.find(expected_);
    }
    if (progressed) stale_acks_ = 0;
    ack(ctx);
}

void ReliableReceiver::ack(TileContext& ctx) {
    std::vector<std::byte> payload;
    for (std::size_t i = 0; i < 4; ++i)
        payload.push_back(static_cast<std::byte>((expected_ >> (8 * i)) & 0xFF));
    const std::uint32_t base = ctx.default_ttl();
    const std::uint32_t shift = std::min<std::uint32_t>(stale_acks_, 5);
    const auto ttl =
        static_cast<std::uint16_t>(std::min<std::uint32_t>(base << shift, 255));
    ctx.send(peer_, ack_tag(channel_), std::move(payload), ttl);
}

} // namespace snoc
