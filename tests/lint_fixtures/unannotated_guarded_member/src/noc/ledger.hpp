#pragma once
#include <cstddef>
#include "common/annotations.hpp"
// BAD: Ledger owns a snoc::Mutex but leaves a plain data member without
// SNOC_GUARDED_BY — exactly the state the analysis silently stops
// checking.
namespace snoc {
class Ledger {
public:
    void add(std::size_t n);

private:
    mutable Mutex mutex_;
    std::size_t total_ SNOC_GUARDED_BY(mutex_){0};
    std::size_t unguarded_count_{0};
};
} // namespace snoc
