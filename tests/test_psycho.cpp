#include "apps/psycho.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc::apps {
namespace {

std::vector<double> tone(std::size_t n, double cycles, double amp = 1.0) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = amp * std::sin(2.0 * std::numbers::pi * cycles * i / n);
    return v;
}

TEST(BandMap, CoversAllBandsMonotonically) {
    const auto map = band_of_lines(128, 16);
    ASSERT_EQ(map.size(), 128u);
    EXPECT_EQ(map.front(), 0u);
    EXPECT_EQ(map.back(), 15u);
    for (std::size_t i = 1; i < map.size(); ++i) EXPECT_GE(map[i], map[i - 1]);
    // Equal-width bands: 8 lines per band.
    for (std::size_t b = 0; b < 16; ++b) {
        std::size_t count = 0;
        for (auto m : map)
            if (m == b) ++count;
        EXPECT_EQ(count, 8u);
    }
}

TEST(BandMap, RejectsMoreBandsThanLines) {
    EXPECT_THROW(band_of_lines(8, 16), snoc::ContractViolation);
}

TEST(Psycho, SilenceHitsAbsoluteFloor) {
    PsychoParams p;
    const auto a = analyze_frame(std::vector<double>(128, 0.0), p);
    ASSERT_EQ(a.band_threshold.size(), p.band_count);
    for (std::size_t b = 0; b < p.band_count; ++b) {
        EXPECT_DOUBLE_EQ(a.band_energy[b], 0.0);
        EXPECT_DOUBLE_EQ(a.band_threshold[b], p.absolute_floor);
    }
}

TEST(Psycho, ToneEnergyLandsInCorrectBand) {
    PsychoParams p;
    // 128-sample frame, 64 positive-frequency lines, 16 bands of 4 lines.
    // A tone at 10 cycles/frame sits on line 10 -> band 2.
    const auto a = analyze_frame(tone(128, 10.0), p);
    std::size_t argmax = 0;
    for (std::size_t b = 1; b < p.band_count; ++b)
        if (a.band_energy[b] > a.band_energy[argmax]) argmax = b;
    EXPECT_EQ(argmax, 2u);
}

TEST(Psycho, SelfMaskingIs18DbBelowEnergy) {
    PsychoParams p;
    const auto a = analyze_frame(tone(128, 10.0, 1.0), p);
    const std::size_t b = 2;
    // Neighbouring-band spreading can only raise the threshold; for the
    // peak band the self term dominates.
    EXPECT_NEAR(10.0 * std::log10(a.band_energy[b] / a.band_threshold[b]), 18.0,
                1e-6);
}

TEST(Psycho, SpreadingRaisesNeighbourThresholds) {
    PsychoParams p;
    const auto loud = analyze_frame(tone(128, 10.0, 1.0), p);
    // Bands adjacent to the tone band inherit masking energy well above
    // the absolute floor.
    EXPECT_GT(loud.band_threshold[1], 100.0 * p.absolute_floor);
    EXPECT_GT(loud.band_threshold[3], 100.0 * p.absolute_floor);
    // And it decays with distance.
    EXPECT_GT(loud.band_threshold[3], loud.band_threshold[6]);
}

TEST(Psycho, SmrIsPositiveAtToneNonPositiveInSilence) {
    PsychoParams p;
    const auto a = analyze_frame(tone(128, 10.0, 1.0), p);
    EXPECT_GT(a.smr_db[2], 10.0);   // audible detail at the tone
    EXPECT_LE(a.smr_db[12], 0.0);   // fully masked far away
}

TEST(Psycho, LouderToneScalesEnergyQuadratically) {
    PsychoParams p;
    const auto soft = analyze_frame(tone(128, 10.0, 0.1), p);
    const auto loud = analyze_frame(tone(128, 10.0, 1.0), p);
    EXPECT_NEAR(loud.band_energy[2] / soft.band_energy[2], 100.0, 1.0);
}

TEST(Psycho, RejectsNonPowerOfTwoFrame) {
    PsychoParams p;
    EXPECT_THROW(analyze_frame(std::vector<double>(100, 0.1), p),
                 snoc::ContractViolation);
    EXPECT_THROW(analyze_frame({}, p), snoc::ContractViolation);
}

class PsychoBandSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsychoBandSweep, ThresholdsNeverBelowFloor) {
    PsychoParams p;
    p.band_count = GetParam();
    const auto a = analyze_frame(tone(256, 17.0, 0.7), p);
    ASSERT_EQ(a.band_threshold.size(), p.band_count);
    for (double t : a.band_threshold) EXPECT_GE(t, p.absolute_floor);
    for (double e : a.band_energy) EXPECT_GE(e, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Bands, PsychoBandSweep, ::testing::Values(4, 8, 16, 32, 64));

} // namespace
} // namespace snoc::apps
