// Per-backend Interconnect adapters (see core/interconnect.hpp for the
// interface contract).  Each adapter is a thin, zero-cost wrapper: it
// builds the underlying backend exactly the way the benches used to by
// hand — same construction order, same RNG derivation — so a run through
// an adapter is metric-for-metric identical to a direct backend run
// (test_interconnect asserts this).
//
// The adapter recipe for a new backend (see DESIGN.md §8):
//   1. a Spec struct: shape + backend config + Technology;
//   2. a constructor (Spec, FaultScenario, seed) that rolls every random
//      decision from `seed`;
//   3. run(trace, limit): realise the trace phase by phase, fill the
//      RunReport fields the backend can measure, leave the rest zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bus/bus.hpp"
#include "bus/deflection.hpp"
#include "bus/xy_router.hpp"
#include "core/engine.hpp"
#include "core/interconnect.hpp"
#include "energy/energy.hpp"
#include "fault/fault_model.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"
#include "router/core.hpp"
#include "wormhole/router.hpp"

namespace snoc {

/// --- Gossip (the paper's engine) ---------------------------------------

struct GossipSpec {
    Topology topology{Topology::mesh(5, 5)};
    GossipConfig config{};
    /// Tiles that must survive the crash roll (masters, endpoints, ...).
    std::vector<TileId> protect{};
    /// Crash exactly k unprotected tiles instead of rolling p_tiles
    /// (Fig. 4-4's x-axis); nullopt = roll p_tiles.
    std::optional<std::size_t> exact_tile_crashes{};
    /// Run the post-completion TTL drain before reading traffic counters
    /// (energy accounting wants the full broadcast lifetime).
    bool drain{false};
    /// Applied to the freshly built network, before the first round —
    /// route filters, forward capacities, clock scales (Ch. 5 hybrids).
    std::function<void(GossipNetwork&)> customize{};
    Technology tech{Technology::cmos_025um()};
    /// Round executor (--engine): lockstep, or the sparse-activity
    /// EventEngine with `engine.shards` intra-trial tile strips.  Results
    /// are bit-identical either way (test_engine_equivalence).
    EngineSelect engine{};
};

class GossipAdapter final : public Interconnect {
public:
    GossipAdapter(GossipSpec spec, const FaultScenario& scenario, std::uint64_t seed);

    BackendKind kind() const override { return BackendKind::Gossip; }

    /// The underlying network, for IP-core deployment (apps::deploy_pi &
    /// co. attach their cores here before run_until).
    GossipNetwork& network() { return net_; }

    /// Replays `trace` through a TraceDriver until it completes or
    /// `limit` rounds elapse.
    RunReport run(const TrafficTrace& trace, Round limit) override;

    /// App-driven execution: run until `done()` or `limit` rounds — the
    /// attached-IpCore flavour of the Interconnect contract.
    RunReport run_until(const std::function<bool()>& done, Round limit);

    const NetworkMetrics* live_metrics() const override {
        return &net_.metrics();
    }

private:
    GossipSpec spec_;
    GossipNetwork net_;
    std::uint64_t seed_;
};

/// --- Shared bus (Sec. 4.1.4 baseline) ----------------------------------

struct BusSpec {
    std::size_t modules{25};
    Technology tech{Technology::cmos_025um()};
};

class BusAdapter final : public Interconnect {
public:
    /// The bus is a single point of failure: it is rolled dead with
    /// probability `scenario.p_links` (the whole medium is one link).
    BusAdapter(BusSpec spec, const FaultScenario& scenario, std::uint64_t seed);

    BackendKind kind() const override { return BackendKind::Bus; }
    SharedBus& bus() { return bus_; }

    RunReport run(const TrafficTrace& trace, Round limit) override;

private:
    BusSpec spec_;
    SharedBus bus_;
    std::uint64_t seed_;
};

/// --- Deterministic XY routing (Ch. 1 strawman) -------------------------

struct XySpec {
    Topology mesh{Topology::mesh(5, 5)};
    std::vector<TileId> protect{};
    Technology tech{Technology::cmos_025um()};
};

class XyAdapter final : public Interconnect {
public:
    XyAdapter(XySpec spec, const FaultScenario& scenario, std::uint64_t seed);

    BackendKind kind() const override { return BackendKind::Xy; }
    const CrashState& crashes() const { return crashes_; }

    RunReport run(const TrafficTrace& trace, Round limit) override;

private:
    XySpec spec_;
    CrashState crashes_;
    std::uint64_t seed_;
};

/// --- Wormhole-routed mesh ----------------------------------------------

struct WormholeSpec {
    std::size_t width{5};
    std::size_t height{5};
    wormhole::Config config{};
    std::vector<TileId> protect{};
    /// Wire bits per packet (flits share it equally) for the energy model.
    double packet_bits{256.0};
    Technology tech{Technology::cmos_025um()};
};

class WormholeAdapter final : public Interconnect {
public:
    WormholeAdapter(WormholeSpec spec, const FaultScenario& scenario,
                    std::uint64_t seed);

    BackendKind kind() const override { return BackendKind::Wormhole; }

    RunReport run(const TrafficTrace& trace, Round limit) override;

private:
    WormholeSpec spec_;
    CrashState crashes_;
    std::uint64_t seed_;
};

/// --- Deflection (hot-potato) routing -----------------------------------

struct DeflectionSpec {
    std::size_t width{5};
    std::size_t height{5};
    deflection::Config config{};
    std::vector<TileId> protect{};
    Technology tech{Technology::cmos_025um()};
};

class DeflectionAdapter final : public Interconnect {
public:
    DeflectionAdapter(DeflectionSpec spec, const FaultScenario& scenario,
                      std::uint64_t seed);

    BackendKind kind() const override { return BackendKind::Deflection; }

    RunReport run(const TrafficTrace& trace, Round limit) override;

private:
    DeflectionSpec spec_;
    FaultScenario scenario_;
    std::uint64_t seed_;
};

/// --- Layered router core (store-and-forward / cut-through / adaptive) ---

/// Shared spec for the router-core backends.  The three BackendKinds are
/// fixed stage selections over one core (src/router/): store-and-forward
/// and virtual cut-through flow control under dimension-order routing,
/// and cut-through under the fault-adaptive detour policy.
struct RouterSpec {
    std::size_t width{5};
    std::size_t height{5};
    router::RouterConfig config{};
    std::vector<TileId> protect{};
    /// Wire bits per packet for the energy model when a trace message
    /// carries no size (flits share it equally for the cycle-time model).
    double packet_bits{256.0};
    Technology tech{Technology::cmos_025um()};
};

struct StoreForwardSpec : RouterSpec {
    StoreForwardSpec() {
        config.flow = router::FlowControl::StoreAndForward;
        config.policy = router::PolicyKind::DimensionOrder;
        // snoc_verify proves the XY channel dependency graph acyclic, so
        // the DeadlockSentinel firing on this stage selection is an
        // invariant violation, not a telemetry event.
        config.expect_deadlock_free = true;
    }
};

struct CutThroughSpec : RouterSpec {
    CutThroughSpec() {
        config.flow = router::FlowControl::CutThrough;
        config.policy = router::PolicyKind::DimensionOrder;
        config.expect_deadlock_free = true; // statically verified (snoc_verify).
    }
};

struct AdaptiveSpec : RouterSpec {
    AdaptiveSpec() {
        config.flow = router::FlowControl::CutThrough;
        config.policy = router::PolicyKind::FaultAdaptive;
    }
};

/// One adapter serves all three router-core kinds: the spec carries the
/// stage selection, `kind` only names it for reports and registries.
class RouterAdapter : public Interconnect {
public:
    RouterAdapter(BackendKind kind, RouterSpec spec, const FaultScenario& scenario,
                  std::uint64_t seed);

    BackendKind kind() const override { return kind_; }

    const CrashState& crashes() const { return crashes_; }

    RunReport run(const TrafficTrace& trace, Round limit) override;

    /// Valid only while run() executes (the core is a local of run(), so
    /// the pointer is published on entry; post-mortem dumps always fire
    /// from inside the run they describe).
    const NetworkMetrics* live_metrics() const override {
        return live_metrics_;
    }

private:
    BackendKind kind_;
    RouterSpec spec_;
    CrashState crashes_;
    std::uint64_t seed_;
    const NetworkMetrics* live_metrics_{nullptr};
};

class StoreForwardAdapter final : public RouterAdapter {
public:
    StoreForwardAdapter(StoreForwardSpec spec, const FaultScenario& scenario,
                        std::uint64_t seed)
        : RouterAdapter(BackendKind::StoreForward, std::move(spec), scenario, seed) {}
};

class CutThroughAdapter final : public RouterAdapter {
public:
    CutThroughAdapter(CutThroughSpec spec, const FaultScenario& scenario,
                      std::uint64_t seed)
        : RouterAdapter(BackendKind::CutThrough, std::move(spec), scenario, seed) {}
};

class AdaptiveAdapter final : public RouterAdapter {
public:
    AdaptiveAdapter(AdaptiveSpec spec, const FaultScenario& scenario,
                    std::uint64_t seed)
        : RouterAdapter(BackendKind::Adaptive, std::move(spec), scenario, seed) {}
};

/// The spec-to-adapter table — X(Kind, Adapter, Spec), one row per
/// BackendKind in SNOC_BACKEND_KIND_LIST order.  The rows generate the
/// spec-typed make_interconnect overloads below and the default-spec
/// factory switch in backends.cpp; diversity::make_interconnect routes
/// its customized GossipSpec through the same overload set.
#define SNOC_BACKEND_ADAPTER_LIST(X)                                           \
    X(Gossip, GossipAdapter, GossipSpec)                                       \
    X(Bus, BusAdapter, BusSpec)                                                \
    X(Xy, XyAdapter, XySpec)                                                   \
    X(Wormhole, WormholeAdapter, WormholeSpec)                                 \
    X(Deflection, DeflectionAdapter, DeflectionSpec)                           \
    X(StoreForward, StoreForwardAdapter, StoreForwardSpec)                     \
    X(CutThrough, CutThroughAdapter, CutThroughSpec)                           \
    X(Adaptive, AdaptiveAdapter, AdaptiveSpec)

// The adapter table must cover the kind registry row for row.
static_assert([] {
    std::size_t rows = 0;
#define SNOC_BACKEND_ADAPTER_COUNT(kind, adapter, spec) ++rows;
    SNOC_BACKEND_ADAPTER_LIST(SNOC_BACKEND_ADAPTER_COUNT)
#undef SNOC_BACKEND_ADAPTER_COUNT
    return rows;
}() == std::size(kBackendKinds),
              "every BackendKind needs a SNOC_BACKEND_ADAPTER_LIST row");

/// Spec-typed construction: make_interconnect(SomeSpec{...}, scenario,
/// seed) picks the right adapter from the table at compile time.
#define SNOC_BACKEND_ADAPTER_OVERLOAD(kind, adapter, spec)                     \
    inline std::unique_ptr<Interconnect> make_interconnect(                    \
        spec s, const FaultScenario& scenario, std::uint64_t seed) {           \
        return std::make_unique<adapter>(std::move(s), scenario, seed);        \
    }
SNOC_BACKEND_ADAPTER_LIST(SNOC_BACKEND_ADAPTER_OVERLOAD)
#undef SNOC_BACKEND_ADAPTER_OVERLOAD

/// Variant-free factory for the uniform construction shape
/// (kind + FaultScenario + seed, defaults for everything else); benches
/// with backend-specific needs construct the adapters directly or pass a
/// spec to the overloads above.
std::unique_ptr<Interconnect> make_interconnect(BackendKind kind,
                                                const FaultScenario& scenario,
                                                std::uint64_t seed);

} // namespace snoc
