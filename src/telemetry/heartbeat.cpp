#include "telemetry/heartbeat.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"
#include "telemetry/metrics_registry.hpp"

namespace snoc {

namespace {

void write_fixed(std::ostream& os, double value) {
    std::ostringstream buf;
    buf.setf(std::ios::fixed);
    buf.precision(6);
    buf << value;
    os << buf.str();
}

std::uint64_t registry_rounds() {
    auto& reg = MetricsRegistry::global();
    return reg.value(MetricId::EngineRoundsTotal) +
           reg.value(MetricId::EventEngineRoundsTotal);
}

/// Find `"key":` in a heartbeat line and return a pointer to the value
/// text, or nullptr.  Good enough for the fixed schema we ourselves
/// write; not a general JSON parser.
const char* find_value(const std::string& line, const char* key) {
    const std::string needle = std::string("\"") + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return nullptr;
    return line.c_str() + pos + needle.size();
}

bool parse_u64(const std::string& line, const char* key, std::uint64_t& out) {
    const char* v = find_value(line, key);
    if (!v) return false;
    char* end = nullptr;
    out = std::strtoull(v, &end, 10);
    return end != v;
}

bool parse_size(const std::string& line, const char* key, std::size_t& out) {
    std::uint64_t v = 0;
    if (!parse_u64(line, key, v)) return false;
    out = static_cast<std::size_t>(v);
    return true;
}

bool parse_double(const std::string& line, const char* key, double& out) {
    const char* v = find_value(line, key);
    if (!v) return false;
    char* end = nullptr;
    out = std::strtod(v, &end);
    return end != v;
}

bool parse_string(const std::string& line, const char* key, std::string& out) {
    const char* v = find_value(line, key);
    if (!v || *v != '"') return false;
    out.clear();
    for (++v; *v && *v != '"'; ++v) {
        if (*v == '\\' && v[1]) ++v;
        out += *v;
    }
    return true;
}

} // namespace

void write_heartbeat(const HeartbeatRecord& record, std::ostream& os) {
    os << "{\"heartbeat\":1,\"schema\":\"snoc-heartbeat-v1\",\"seq\":"
       << record.seq << ",\"elapsed_s\":";
    write_fixed(os, record.elapsed_seconds);
    os << ",\"experiment\":\"" << record.experiment << "\",\"cells_done\":"
       << record.cells_done << ",\"cells_total\":" << record.cells_total
       << ",\"trials_done\":" << record.trials_done
       << ",\"trials_total\":" << record.trials_total
       << ",\"retries\":" << record.retries << ",\"cell_s\":";
    write_fixed(os, record.cell_seconds);
    os << ",\"eta_s\":";
    write_fixed(os, record.eta_seconds);
    os << ",\"rounds_total\":" << record.rounds_total
       << ",\"rounds_delta\":" << record.rounds_delta
       << ",\"postmortems\":" << record.postmortems
       << ",\"done\":" << (record.done ? "true" : "false") << "}\n";
}

std::vector<HeartbeatRecord> load_heartbeats(std::istream& is) {
    std::vector<HeartbeatRecord> records;
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("\"heartbeat\":1") == std::string::npos) continue;
        HeartbeatRecord r;
        // seq + trials_done are the load-bearing fields; a line missing
        // either is a torn write and gets skipped.
        if (!parse_u64(line, "seq", r.seq)) continue;
        if (!parse_size(line, "trials_done", r.trials_done)) continue;
        parse_double(line, "elapsed_s", r.elapsed_seconds);
        parse_string(line, "experiment", r.experiment);
        parse_size(line, "cells_done", r.cells_done);
        parse_size(line, "cells_total", r.cells_total);
        parse_size(line, "trials_total", r.trials_total);
        parse_size(line, "retries", r.retries);
        parse_double(line, "cell_s", r.cell_seconds);
        parse_double(line, "eta_s", r.eta_seconds);
        parse_u64(line, "rounds_total", r.rounds_total);
        parse_u64(line, "rounds_delta", r.rounds_delta);
        parse_u64(line, "postmortems", r.postmortems);
        r.done = line.find("\"done\":true") != std::string::npos;
        records.push_back(std::move(r));
    }
    return records;
}

std::vector<HeartbeatRecord> load_heartbeats_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open()) return {};
    return load_heartbeats(is);
}

void render_top(const std::vector<HeartbeatRecord>& records, std::ostream& os) {
    if (records.empty()) {
        os << "snoc_top: no heartbeats yet\n";
        return;
    }
    const HeartbeatRecord& r = records.back();
    os << "sweep " << (r.experiment.empty() ? "?" : r.experiment)
       << (r.done ? "  [done]" : "  [running]") << '\n';

    const auto bar = [&](std::size_t done, std::size_t total) {
        constexpr std::size_t kWidth = 30;
        const std::size_t fill =
            total == 0 ? 0 : std::min(kWidth, done * kWidth / total);
        os << '[';
        for (std::size_t i = 0; i < kWidth; ++i) os << (i < fill ? '#' : '.');
        os << "] " << done << '/' << total;
    };
    os << "  cells  ";
    bar(r.cells_done, r.cells_total);
    os << '\n';
    os << "  trials ";
    bar(r.trials_done, r.trials_total);
    if (r.retries > 0) os << "  (+" << r.retries << " retries)";
    os << '\n';

    std::ostringstream nums;
    nums.setf(std::ios::fixed);
    nums.precision(1);
    nums << "  elapsed " << r.elapsed_seconds << "s";
    if (!r.done && r.eta_seconds >= 0.0) nums << "  eta " << r.eta_seconds << "s";
    if (r.cell_seconds >= 0.0) nums << "  last cell " << r.cell_seconds << "s";
    os << nums.str() << '\n';

    std::ostringstream rate;
    rate.setf(std::ios::fixed);
    rate.precision(0);
    rate << "  rounds " << r.rounds_total;
    if (records.size() >= 2) {
        const HeartbeatRecord& prev = records[records.size() - 2];
        const double dt = r.elapsed_seconds - prev.elapsed_seconds;
        if (dt > 0.0)
            rate << "  (" << static_cast<double>(r.rounds_delta) / dt
                 << " rounds/s)";
    }
    os << rate.str() << '\n';
    if (r.postmortems > 0)
        os << "  !! " << r.postmortems << " postmortem bundle"
           << (r.postmortems == 1 ? "" : "s") << " written\n";
}

HeartbeatWriter::HeartbeatWriter(const std::string& path, std::size_t every_n)
    : os_(path, std::ios::binary | std::ios::trunc),
      every_n_(every_n),
      start_(std::chrono::steady_clock::now()) {
    SNOC_EXPECT(os_.is_open());
    last_rounds_ = registry_rounds();
}

HeartbeatWriter::~HeartbeatWriter() = default;

std::uint64_t HeartbeatWriter::emitted() const {
    LockGuard lock(mutex_);
    return seq_;
}

void HeartbeatWriter::update(const ProgressUpdate& update) {
    LockGuard lock(mutex_);
    const bool boundary = update.sweep_done || update.cell_seconds >= 0.0;
    const bool on_cadence = every_n_ > 0 && update.trials_done > 0 &&
                            update.trials_done % every_n_ == 0;
    if (!boundary && !on_cadence) return;
    emit_locked(update);
}

void HeartbeatWriter::emit_locked(const ProgressUpdate& update) {
    auto& reg = MetricsRegistry::global();
    HeartbeatRecord r;
    r.seq = ++seq_;
    r.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    r.experiment = update.experiment;
    r.cells_total = update.cells_total;
    r.cells_done = update.cells_done;
    r.trials_total = update.trials_total;
    r.trials_done = update.trials_done;
    r.retries = update.retries;
    r.cell_seconds = update.cell_seconds;
    if (!update.sweep_done && update.trials_done > 0 &&
        update.trials_total > update.trials_done)
        r.eta_seconds = r.elapsed_seconds *
                        static_cast<double>(update.trials_total -
                                            update.trials_done) /
                        static_cast<double>(update.trials_done);
    r.rounds_total = registry_rounds();
    r.rounds_delta = r.rounds_total - last_rounds_;
    last_rounds_ = r.rounds_total;
    r.postmortems = reg.value(MetricId::PostmortemsTotal);
    r.done = update.sweep_done;
    write_heartbeat(r, os_);
    os_.flush();
    reg.inc(MetricId::HeartbeatsTotal);
}

} // namespace snoc
