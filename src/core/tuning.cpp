#include "core/tuning.hpp"

#include <cmath>
#include <memory>
#include <queue>

#include "common/expect.hpp"
#include "core/engine.hpp"

namespace snoc {

std::uint16_t estimate_ttl(std::size_t diameter, double forward_p) {
    SNOC_EXPECT(forward_p > 0.0 && forward_p <= 1.0);
    const double hops = static_cast<double>(diameter);
    // Wave speed ~ p hops/round toward a fixed tile plus log-ish slack for
    // the stochastic tail.
    const double rounds = hops / forward_p + 2.0 * std::log2(hops + 2.0);
    return static_cast<std::uint16_t>(std::ceil(rounds));
}

namespace {

/// BFS distances from `from` over live links (topology is fault-free here).
std::vector<std::size_t> bfs_distances(const Topology& topo, TileId from) {
    constexpr auto kUnreached = static_cast<std::size_t>(-1);
    std::vector<std::size_t> dist(topo.node_count(), kUnreached);
    std::queue<TileId> frontier;
    dist[from] = 0;
    frontier.push(from);
    while (!frontier.empty()) {
        const TileId cur = frontier.front();
        frontier.pop();
        for (TileId next : topo.neighbours(cur)) {
            if (dist[next] != kUnreached) continue;
            dist[next] = dist[cur] + 1;
            frontier.push(next);
        }
    }
    return dist;
}

class ProbeSource final : public IpCore {
public:
    explicit ProbeSource(TileId dst) : dst_(dst) {}
    void on_start(TileContext& ctx) override {
        ctx.send(dst_, 0x77, {std::byte{0x42}});
    }
    void on_message(const Message&, TileContext&) override {}

private:
    TileId dst_;
};

class ProbeSink final : public IpCore {
public:
    void on_message(const Message&, TileContext&) override { received_ = true; }
    bool received() const { return received_; }

private:
    bool received_{false};
};

/// Fraction of trials in which one rumor with this TTL reaches dst.
double delivery_probability(const Topology& topo, double p, std::uint16_t ttl,
                            TileId src, TileId dst, std::uint64_t seed,
                            std::size_t trials) {
    std::size_t delivered = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
        GossipConfig config;
        config.forward_p = p;
        config.default_ttl = ttl;
        GossipNetwork net(topo, config, FaultScenario::none(),
                          derive_seed(seed, trial));
        auto sink = std::make_unique<ProbeSink>();
        const ProbeSink& s = *sink;
        net.attach(src, std::make_unique<ProbeSource>(dst));
        net.attach(dst, std::move(sink));
        net.run_until([&s] { return s.received(); },
                      static_cast<Round>(ttl) + 2);
        if (s.received()) ++delivered;
    }
    return static_cast<double>(delivered) / static_cast<double>(trials);
}

} // namespace

std::pair<TileId, TileId> farthest_pair(const Topology& topo) {
    // Double-BFS heuristic (exact on trees, excellent on meshes): farthest
    // node from 0, then farthest node from that.
    const auto d0 = bfs_distances(topo, 0);
    TileId a = 0;
    for (TileId t = 0; t < topo.node_count(); ++t)
        if (d0[t] != static_cast<std::size_t>(-1) && d0[t] > d0[a]) a = t;
    const auto da = bfs_distances(topo, a);
    TileId b = a;
    for (TileId t = 0; t < topo.node_count(); ++t)
        if (da[t] != static_cast<std::size_t>(-1) && da[t] > da[b]) b = t;
    return {a, b};
}

TtlPlan plan_ttl(const Topology& topo, double forward_p, double target_delivery,
                 std::uint64_t seed, std::size_t trials) {
    SNOC_EXPECT(forward_p > 0.0 && forward_p <= 1.0);
    SNOC_EXPECT(target_delivery > 0.0 && target_delivery <= 1.0);
    SNOC_EXPECT(trials > 0);

    TtlPlan plan;
    const auto [src, dst] = farthest_pair(topo);
    plan.worst_source = src;
    plan.worst_destination = dst;
    const auto da = bfs_distances(topo, src);
    const std::size_t diameter = da[dst];

    // Bracket: the closed-form estimate, grown until the target is met.
    std::uint16_t hi = estimate_ttl(diameter, forward_p);
    double hi_delivery =
        delivery_probability(topo, forward_p, hi, src, dst, seed, trials);
    while (hi_delivery < target_delivery && hi < 1024) {
        hi = static_cast<std::uint16_t>(hi * 2);
        hi_delivery = delivery_probability(topo, forward_p, hi, src, dst, seed, trials);
    }
    // Binary-search the smallest adequate TTL in [diameter, hi].
    std::uint16_t lo = static_cast<std::uint16_t>(diameter);
    std::uint16_t best = hi;
    double best_delivery = hi_delivery;
    while (lo < hi) {
        const auto mid = static_cast<std::uint16_t>((lo + hi) / 2);
        const double d =
            delivery_probability(topo, forward_p, mid, src, dst, seed, trials);
        if (d >= target_delivery) {
            best = mid;
            best_delivery = d;
            hi = mid;
        } else {
            lo = static_cast<std::uint16_t>(mid + 1);
        }
    }
    plan.recommended_ttl = best;
    plan.achieved_delivery = best_delivery;
    return plan;
}

} // namespace snoc
