// Fast Fourier Transform substrate (Sec. 4.1.2).
//
// A from-scratch iterative radix-2 Cooley-Tukey FFT, a direct O(N^2) DFT
// used as the test oracle, a row-column 2-D FFT, and the 2-D
// decimation-in-time split/combine that the parallel tree of Fig. 4-3
// distributes over tiles:
//
//   X(k1,k2) = sum_{a,b in {0,1}} W_N^(a*k1) W_N^(b*k2)
//              F_ab(k1 mod N/2, k2 mod N/2),       W_N = e^(-2*pi*i/N)
//
// where F_ab is the (N/2 x N/2) 2-D FFT of the subimage x(2*m1+a, 2*m2+b).
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <vector>

namespace snoc::apps {

using Complex = std::complex<double>;

/// Row-major square (or rectangular) complex image.
struct ComplexImage {
    std::size_t width{0};
    std::size_t height{0};
    std::vector<Complex> data;

    static ComplexImage zeros(std::size_t w, std::size_t h) {
        return {w, h, std::vector<Complex>(w * h)};
    }
    Complex& at(std::size_t x, std::size_t y) { return data[y * width + x]; }
    const Complex& at(std::size_t x, std::size_t y) const { return data[y * width + x]; }
};

/// In-place iterative radix-2 FFT; size must be a power of two.
void fft(std::vector<Complex>& samples);
/// Inverse FFT (unscaled forward with conjugation + 1/N).
void ifft(std::vector<Complex>& samples);
/// Direct DFT — the O(N^2) oracle.
std::vector<Complex> dft_direct(const std::vector<Complex>& samples);

/// 2-D FFT by rows then columns; width and height must be powers of two.
ComplexImage fft2d(const ComplexImage& image);
/// Direct 2-D DFT oracle.
ComplexImage dft2d_direct(const ComplexImage& image);

/// Split an N x N image (N even) into the four decimated subimages
/// F[b*2+a] = x(2*m1+a, 2*m2+b) of size N/2 x N/2.
std::array<ComplexImage, 4> decimate2d(const ComplexImage& image);

/// Combine the four transformed subimages back into the N x N spectrum
/// (the butterfly executed by the root of the Fig. 4-3 tree).
ComplexImage combine2d(const std::array<ComplexImage, 4>& quads);

/// Max |a-b| over all pixels — for tests.
double max_abs_diff(const ComplexImage& a, const ComplexImage& b);

} // namespace snoc::apps
