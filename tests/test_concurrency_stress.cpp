// Concurrency stress suite (DESIGN.md §16): hammer the lock-free shared
// state — MetricsRegistry's relaxed atomics and FlightRecorder's
// single-writer-per-lane rings — from >= 8 threads and assert exact
// totals afterwards.  Under a plain build these tests check the
// arithmetic contracts (relaxed RMWs lose no increments; lanes merge
// every event); under SNOC_SANITIZE=thread (label `parallel`/`telemetry`,
// the CI thread-sanitizer leg) they are the probes that would surface a
// mis-relaxed ordering or a lane accidentally shared between writers.
//
// The drain/size/write_* calls are deliberately *barriered* for the
// flight recorder (after join) and deliberately *concurrent* for the
// registry: that is each component's documented contract — recorder
// lanes are single-writer with a join before the merge, registry
// exposition races with writers by design and takes a non-atomic
// snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "sim/trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/metrics_registry.hpp"

namespace snoc {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kIters = 20'000;

TraceEvent event(Round round, TraceEventKind kind, TileId tile) {
    TraceEvent e;
    e.round = round;
    e.kind = kind;
    e.tile = tile;
    return e;
}

TEST(ConcurrencyStress, MetricsRegistryExactUnderContention) {
    MetricsRegistry reg;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&reg] {
            for (std::size_t i = 0; i < kIters; ++i) {
                reg.inc(MetricId::EngineRoundsTotal);
                reg.inc(MetricId::TrialsTotal, 2);
                reg.observe(MetricId::TrialRounds, i % 64);
            }
        });
    }
    // Concurrent readers are part of the contract: exposition takes a
    // non-atomic snapshot while writers run (documented in the header),
    // so both exporters must at least be race-free and well-formed.
    std::atomic<bool> stop{false};
    std::thread reader([&reg, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
            std::ostringstream json, prom;
            reg.write_json(json);
            reg.write_prometheus(prom);
            EXPECT_NE(json.str().find("snoc_engine_rounds_total"),
                      std::string::npos);
            EXPECT_NE(prom.str().find("# TYPE snoc_trial_rounds histogram"),
                      std::string::npos);
        }
    });
    for (auto& w : writers) w.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(reg.value(MetricId::EngineRoundsTotal), kThreads * kIters);
    EXPECT_EQ(reg.value(MetricId::TrialsTotal), 2 * kThreads * kIters);
    EXPECT_EQ(reg.histogram_count(MetricId::TrialRounds), kThreads * kIters);
    std::uint64_t expected_sum = 0;
    for (std::size_t i = 0; i < kIters; ++i) expected_sum += i % 64;
    EXPECT_EQ(reg.histogram_sum(MetricId::TrialRounds),
              kThreads * expected_sum);
    // +Inf bucket is cumulative over everything observed.
    EXPECT_EQ(reg.histogram_bucket(MetricId::TrialRounds,
                                   kHistogramBucketCount - 1),
              kThreads * kIters);
}

TEST(ConcurrencyStress, FlightRecorderLanesExactAcrossDrains) {
    constexpr std::size_t kWaves = 3;
    constexpr std::size_t kPerWave = 4'000;
    // Capacity large enough that nothing is overwritten: the assertion
    // below is exact, not modulo ring wraparound.
    FlightRecorder recorder(kWaves * kPerWave, kThreads);
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
        std::vector<std::thread> producers;
        producers.reserve(kThreads);
        for (std::size_t t = 0; t < kThreads; ++t) {
            producers.emplace_back([&recorder, wave, t] {
                TraceSink& sink = recorder.lane(t);
                for (std::size_t i = 0; i < kPerWave; ++i) {
                    sink.record(event(
                        static_cast<Round>(wave * kPerWave + i),
                        i % 2 ? TraceEventKind::Transmitted
                              : TraceEventKind::Delivered,
                        static_cast<TileId>(t)));
                }
            });
        }
        for (auto& p : producers) p.join();
        // Join above is the barrier the drain contract requires: lanes
        // are single-writer and the merger reads only quiesced lanes.
        const auto events = recorder.drain();
        ASSERT_EQ(events.size(), kThreads * kPerWave * (wave + 1));
        EXPECT_EQ(recorder.dropped(), 0u);
        // Merge order is deterministic: ascending round, ties by lane.
        for (std::size_t i = 1; i < events.size(); ++i)
            EXPECT_LE(events[i - 1].round, events[i].round);
    }
    const auto totals = recorder.kind_totals();
    std::size_t recorded = 0;
    for (const std::size_t n : totals) recorded += n;
    EXPECT_EQ(recorded, kThreads * kPerWave * kWaves);
}

TEST(ConcurrencyStress, RunTrialsFeedsSharedRegistryExactly) {
    // The composition the simulator actually runs: trial workers (the
    // shared ThreadPool, >= 8 lanes of work) bumping the global-style
    // registry through run_trials while a HeartbeatWriter-style reader
    // could snapshot at any time.
    MetricsRegistry reg;
    const auto results = run_trials(
        kThreads * 4,
        [&reg](std::uint64_t trial) {
            for (std::size_t i = 0; i < 1'000; ++i)
                reg.inc(MetricId::EventEngineRoundsTotal);
            return trial;
        },
        kThreads);
    ASSERT_EQ(results.size(), kThreads * 4);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i);
    EXPECT_EQ(reg.value(MetricId::EventEngineRoundsTotal),
              kThreads * 4 * 1'000);
}

TEST(ConcurrencyStress, HeartbeatWriterSerialisesConcurrentUpdates) {
    const std::string path = ::testing::TempDir() + "conc_stress_hb.jsonl";
    constexpr std::size_t kUpdates = 500;
    {
        HeartbeatWriter writer(path, 1);
        std::vector<std::thread> callers;
        callers.reserve(kThreads);
        for (std::size_t t = 0; t < kThreads; ++t) {
            callers.emplace_back([&writer, t] {
                for (std::size_t i = 0; i < kUpdates; ++i) {
                    ProgressUpdate u;
                    u.experiment = "stress";
                    u.trials_total = kThreads * kUpdates;
                    u.trials_done = t * kUpdates + i + 1;
                    writer.update(u);
                }
            });
        }
        for (auto& c : callers) c.join();
        EXPECT_EQ(writer.emitted(), kThreads * kUpdates);
    }
    // Every record made it to disk whole: seq numbers are a permutation
    // of 1..N (the writer's lock serialises emission), lines all parse.
    const auto records = load_heartbeats_file(path);
    ASSERT_EQ(records.size(), kThreads * kUpdates);
    std::vector<bool> seen(kThreads * kUpdates + 1, false);
    for (const auto& r : records) {
        ASSERT_GE(r.seq, 1u);
        ASSERT_LE(r.seq, kThreads * kUpdates);
        EXPECT_FALSE(seen[static_cast<std::size_t>(r.seq)]);
        seen[static_cast<std::size_t>(r.seq)] = true;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace snoc
