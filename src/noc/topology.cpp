#include "noc/topology.hpp"

#include <cstdlib>
#include <queue>

#include "common/expect.hpp"

namespace snoc {

void Topology::add_directed_link(TileId from, TileId to) {
    SNOC_EXPECT(from < neighbours_.size());
    SNOC_EXPECT(to < neighbours_.size());
    SNOC_EXPECT(from != to);
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(LinkEnd{from, to});
    neighbours_[from].push_back(to);
    out_links_[from].push_back(id);
}

Topology Topology::mesh(std::size_t width, std::size_t height) {
    SNOC_EXPECT(width > 0 && height > 0);
    Topology t;
    t.name_ = std::to_string(width) + "x" + std::to_string(height) + " mesh";
    t.width_ = width;
    t.height_ = height;
    const std::size_t n = width * height;
    t.neighbours_.resize(n);
    t.out_links_.resize(n);
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            const auto id = static_cast<TileId>(y * width + x);
            // Port order matches Fig. 3-4's four output ports: N, E, S, W.
            if (y > 0) t.add_directed_link(id, static_cast<TileId>(id - width));
            if (x + 1 < width) t.add_directed_link(id, static_cast<TileId>(id + 1));
            if (y + 1 < height) t.add_directed_link(id, static_cast<TileId>(id + width));
            if (x > 0) t.add_directed_link(id, static_cast<TileId>(id - 1));
        }
    }
    return t;
}

Topology Topology::fully_connected(std::size_t n) {
    SNOC_EXPECT(n > 1);
    Topology t;
    t.name_ = std::to_string(n) + "-node fully connected";
    t.neighbours_.resize(n);
    t.out_links_.resize(n);
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b < n; ++b)
            if (a != b) t.add_directed_link(static_cast<TileId>(a), static_cast<TileId>(b));
    return t;
}

Topology Topology::torus(std::size_t width, std::size_t height) {
    SNOC_EXPECT(width > 1 && height > 1);
    Topology t;
    t.name_ = std::to_string(width) + "x" + std::to_string(height) + " torus";
    t.width_ = width;
    t.height_ = height;
    const std::size_t n = width * height;
    t.neighbours_.resize(n);
    t.out_links_.resize(n);
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            const auto id = static_cast<TileId>(y * width + x);
            const auto north = static_cast<TileId>(((y + height - 1) % height) * width + x);
            const auto east = static_cast<TileId>(y * width + (x + 1) % width);
            const auto south = static_cast<TileId>(((y + 1) % height) * width + x);
            const auto west = static_cast<TileId>(y * width + (x + width - 1) % width);
            t.add_directed_link(id, north);
            if (east != north) t.add_directed_link(id, east);
            if (south != north && south != east) t.add_directed_link(id, south);
            if (west != north && west != east && west != south) t.add_directed_link(id, west);
        }
    }
    return t;
}

Topology Topology::from_edges(std::size_t n, const std::vector<LinkEnd>& undirected_edges,
                              std::string name) {
    SNOC_EXPECT(n > 0);
    Topology t;
    t.name_ = std::move(name);
    t.neighbours_.resize(n);
    t.out_links_.resize(n);
    for (const auto& e : undirected_edges) {
        t.add_directed_link(e.from, e.to);
        t.add_directed_link(e.to, e.from);
    }
    return t;
}

const std::vector<TileId>& Topology::neighbours(TileId t) const {
    SNOC_EXPECT(t < neighbours_.size());
    return neighbours_[t];
}

const std::vector<LinkId>& Topology::out_links(TileId t) const {
    SNOC_EXPECT(t < out_links_.size());
    return out_links_[t];
}

const LinkEnd& Topology::link(LinkId id) const {
    SNOC_EXPECT(id < links_.size());
    return links_[id];
}

std::size_t Topology::width() const {
    SNOC_EXPECT(is_grid());
    return width_;
}

std::size_t Topology::height() const {
    SNOC_EXPECT(is_grid());
    return height_;
}

std::size_t Topology::x_of(TileId t) const {
    SNOC_EXPECT(is_grid());
    SNOC_EXPECT(t < node_count());
    return t % width_;
}

std::size_t Topology::y_of(TileId t) const {
    SNOC_EXPECT(is_grid());
    SNOC_EXPECT(t < node_count());
    return t / width_;
}

TileId Topology::at(std::size_t x, std::size_t y) const {
    SNOC_EXPECT(is_grid());
    SNOC_EXPECT(x < width_ && y < height_);
    return static_cast<TileId>(y * width_ + x);
}

std::size_t Topology::manhattan(TileId a, TileId b) const {
    const auto dx = static_cast<long>(x_of(a)) - static_cast<long>(x_of(b));
    const auto dy = static_cast<long>(y_of(a)) - static_cast<long>(y_of(b));
    return static_cast<std::size_t>(std::labs(dx) + std::labs(dy));
}

bool Topology::connected_without(const std::vector<bool>& dead_tiles,
                                 const std::vector<bool>& dead_links) const {
    SNOC_EXPECT(dead_tiles.size() == node_count());
    SNOC_EXPECT(dead_links.size() == link_count());
    // BFS from the first live tile over live links / tiles.
    TileId start = kNoTile;
    std::size_t live = 0;
    for (TileId t = 0; t < node_count(); ++t) {
        if (!dead_tiles[t]) {
            if (start == kNoTile) start = t;
            ++live;
        }
    }
    if (live <= 1) return true;

    std::vector<bool> seen(node_count(), false);
    std::queue<TileId> frontier;
    frontier.push(start);
    seen[start] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
        const TileId cur = frontier.front();
        frontier.pop();
        const auto& links = out_links_[cur];
        const auto& nbrs = neighbours_[cur];
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const TileId next = nbrs[i];
            if (dead_links[links[i]] || dead_tiles[next] || seen[next]) continue;
            seen[next] = true;
            ++reached;
            frontier.push(next);
        }
    }
    return reached == live;
}

} // namespace snoc
