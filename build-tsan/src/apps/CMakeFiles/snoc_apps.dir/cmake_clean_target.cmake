file(REMOVE_RECURSE
  "libsnoc_apps.a"
)
