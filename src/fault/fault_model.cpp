#include "fault/fault_model.hpp"

#include <sstream>

#include "common/expect.hpp"

namespace snoc {

namespace {
bool in_unit(double p) { return p >= 0.0 && p <= 1.0; }
} // namespace

void FaultScenario::validate() const {
    SNOC_EXPECT(in_unit(p_tiles));
    SNOC_EXPECT(in_unit(p_links));
    SNOC_EXPECT(in_unit(p_upset));
    SNOC_EXPECT(in_unit(p_overflow));
    SNOC_EXPECT(sigma_synchr >= 0.0);
}

std::string FaultScenario::describe() const {
    std::ostringstream os;
    os << "tiles=" << p_tiles << " links=" << p_links << " upset=" << p_upset
       << "(" << to_string(upset_model) << ")"
       << " ovf=" << p_overflow << " sync=" << sigma_synchr;
    return os.str();
}

} // namespace snoc
