// The 2-D FFT case study of Sec. 4.1.2 (Fig. 4-3): a 16x16 synthetic
// image is decimated into four quadrants, transformed in parallel by
// worker tiles of a 4x4 NoC and recombined by the root — all over
// stochastic communication, under data upsets.
//
// The example prints the strongest spectral peaks and checks the
// distributed result against the sequential oracle: CRC-filtered gossip
// delivers bit-clean data even when 40% of packets are scrambled.
//
// Usage: fft2d_image [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "apps/fft2d_app.hpp"

using namespace snoc;
using namespace snoc::apps;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

    GossipConfig config;
    config.forward_p = 0.5;
    config.default_ttl = 50;
    FaultScenario scenario;
    scenario.p_upset = 0.4; // 40% of transmissions scrambled

    GossipNetwork net(Topology::mesh(4, 4), config, scenario, seed);
    FftDeployment deployment;
    deployment.duplicate_workers = true;
    auto& root = deploy_fft2d(net, deployment, seed);

    std::cout << "Parallel 2-D FFT of a 16x16 image on a 4x4 NoC\n"
              << "faults: " << scenario.describe() << "\n";
    const auto run = net.run_until([&root] { return root.done(); }, 3000);
    if (!run.completed) {
        std::cout << "did not complete within the round budget\n";
        return 1;
    }
    std::cout << "completed in " << run.rounds << " rounds; packets: "
              << net.metrics().packets_sent
              << ", CRC drops: " << net.metrics().crc_drops << "\n";

    // Compare against the sequential transform.
    const auto oracle = fft2d(make_test_image(deployment.image_size, seed));
    const double err = max_abs_diff(root.spectrum(), oracle);
    std::cout << "max |distributed - sequential| = " << err
              << " (float32 payload quantisation only)\n\n";

    // Show the dominant non-DC peaks: the test image is sin(3x)+0.5cos(5y).
    struct Peak {
        std::size_t k1, k2;
        double mag;
    };
    std::vector<Peak> peaks;
    const auto& s = root.spectrum();
    for (std::size_t k2 = 0; k2 < s.height; ++k2)
        for (std::size_t k1 = 0; k1 < s.width; ++k1)
            if (k1 + k2 > 0) peaks.push_back({k1, k2, std::abs(s.at(k1, k2))});
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak& a, const Peak& b) { return a.mag > b.mag; });
    std::cout << "strongest spectral peaks (expect +-3 in k1 and +-5 in k2):\n";
    for (std::size_t i = 0; i < 4 && i < peaks.size(); ++i)
        std::cout << "  (k1=" << peaks[i].k1 << ", k2=" << peaks[i].k2
                  << ")  |X| = " << peaks[i].mag << "\n";
    return err < 1e-2 ? 0 : 1;
}
