// Round timing (Sec. 3.3.1, Eq. 2) and the GALS clock-domain model.
//
// A *broadcast round* is the interval in which a tile finishes sending all
// its messages to the next hops.  Its optimal duration is
//     T_R = N_packets_per_round * S / f                      (Eq. 2)
// where f is the link frequency, S the average packet size (bits) and
// N_packets_per_round the average number of packets a link sends per round.
//
// Every tile owns its clock domain (Ch. 2): the realised duration of each
// round is normally distributed around T_R with std-dev sigma_synchr*T_R.
// Accumulated drift between two tiles can make a message miss the receive
// window of the next round and slip one round further — that is the
// synchronisation-error failure mode.
#pragma once

#include <cstddef>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace snoc {

/// Parameters of Eq. 2.
struct RoundTiming {
    double link_frequency_hz{381e6}; ///< 0.25um NoC link (Sec. 4.1.4).
    double packets_per_round{1.0};   ///< application-dependent average.
    double packet_bits{256.0};       ///< average packet size S.

    /// T_R in seconds (Eq. 2).
    double round_seconds() const {
        SNOC_EXPECT(link_frequency_hz > 0.0);
        return packets_per_round * packet_bits / link_frequency_hz;
    }
};

/// Tracks per-tile local time under jittered round durations.
class GalsClocks {
public:
    GalsClocks(std::size_t tiles, double t_r)
        : t_r_(t_r), local_time_(tiles, 0.0) {
        SNOC_EXPECT(t_r > 0.0);
    }

    double t_r() const { return t_r_; }

    /// Advance one tile by a realised round duration.
    void advance(TileId tile, double duration) {
        SNOC_EXPECT(tile < local_time_.size());
        SNOC_EXPECT(duration > 0.0);
        local_time_[tile] += duration;
    }

    double local_time(TileId tile) const {
        SNOC_EXPECT(tile < local_time_.size());
        return local_time_[tile];
    }

    /// Positive when `a` runs ahead of `b`.
    double skew(TileId a, TileId b) const { return local_time(a) - local_time(b); }

    /// Wall-clock so far: the slowest domain bounds completion.
    double elapsed() const {
        double m = 0.0;
        for (double t : local_time_) m = (t > m) ? t : m;
        return m;
    }

private:
    double t_r_;
    std::vector<double> local_time_;
};

} // namespace snoc
