// Ablation (ours): voltage/frequency islands (Ch. 5).
//
// The Master-Slave workload runs with the outer ring of the 5x5 chip in a
// slower, lower-voltage island.  Frequency scales ~V and dynamic energy
// ~V^2, so a half-frequency island spends roughly a quarter of the energy
// per bit.  The bench sweeps the island's slowdown and reports latency
// and island-aware energy — making the Ch. 5 claim ("combining
// architectural styles to optimise energy") quantitative.
#include <iostream>

#include "bench_util.hpp"

namespace {

/// Tiles of the outer ring of the 5x5 mesh (everything except the 3x3
/// centre block that hosts master + slaves).
std::vector<snoc::TileId> outer_ring() {
    std::vector<snoc::TileId> ring;
    for (snoc::TileId t = 0; t < 25; ++t) {
        const auto x = t % 5, y = t / 5;
        if (x == 0 || x == 4 || y == 0 || y == 4) ring.push_back(t);
    }
    return ring;
}

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 10);
    const auto tech = Technology::cmos_025um();
    const auto ring = outer_ring();

    struct Trial {
        bool completed{false};
        double rounds{0.0}, uniform_energy{0.0}, island_energy{0.0};
    };

    Table table({"ring slowdown", "latency [rounds]", "completion [%]",
                 "energy, uniform Ebit [J]", "energy, island-aware [J]"});
    for (double scale : {1.0, 1.5, 2.0, 3.0, 4.0}) {
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                GossipNetwork net(Topology::mesh(5, 5), bench::config_with_p(0.5, 30),
                                  FaultScenario::none(), seed,
                                  bench::engine_select(opt));
                apps::PiDeployment d;
                auto& master = apps::deploy_pi(net, d);
                net.protect(d.master_tile);
                for (TileId t : ring) net.set_clock_scale(t, scale);
                const auto r = net.run_until([&master] { return master.done(); }, 2000);
                Trial out;
                if (!r.completed) return out;
                out.completed = true;
                out.rounds = static_cast<double>(r.rounds);
                net.drain();
                const auto& m = net.metrics();
                out.uniform_energy =
                    static_cast<double>(m.bits_sent) * tech.link_ebit_joules;
                // Island-aware: V ~ f, E_bit ~ V^2 => E_bit / scale^2 in the
                // slow island.
                double joules = 0.0;
                for (TileId t = 0; t < 25; ++t) {
                    const bool in_ring =
                        std::find(ring.begin(), ring.end(), t) != ring.end();
                    const double ebit = in_ring
                                            ? tech.link_ebit_joules / (scale * scale)
                                            : tech.link_ebit_joules;
                    joules += static_cast<double>(m.bits_sent_by_tile[t]) * ebit;
                }
                out.island_energy = joules;
                return out;
            },
            opt.jobs);
        Accumulator rounds, uniform_energy, island_energy;
        std::size_t completed = 0;
        for (const Trial& t : trials) {
            if (!t.completed) continue;
            ++completed;
            rounds.add(t.rounds);
            uniform_energy.add(t.uniform_energy);
            island_energy.add(t.island_energy);
        }
        table.add_row({format_number(scale, 1),
                       completed ? format_number(rounds.mean(), 1) : "DNF",
                       format_number(100.0 * completed / opt.repeats, 0),
                       completed ? format_sci(uniform_energy.mean(), 2) : "-",
                       completed ? format_sci(island_energy.mean(), 2) : "-"});
    }
    bench::emit(table, opt,
                "Ablation: voltage/frequency island on the outer ring "
                "(Master-Slave, 5x5, p=0.5)");
    std::cout << "\nReading: slowing the ring costs a few rounds of latency\n"
                 "but the island's quadratic energy win shrinks the chip's\n"
                 "communication energy - the Ch. 5 diversity trade-off.\n";
    return 0;
}
