#include "telemetry/metrics_registry.hpp"
namespace snoc { MetricId used_emit_site() { return MetricId::Used; } }
