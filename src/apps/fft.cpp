#include "apps/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/expect.hpp"

namespace snoc::apps {

namespace {

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Bit-reversal permutation for the iterative FFT.
void bit_reverse(std::vector<Complex>& a) {
    const std::size_t n = a.size();
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }
}

} // namespace

void fft(std::vector<Complex>& a) {
    SNOC_EXPECT(is_pow2(a.size()));
    const std::size_t n = a.size();
    if (n == 1) return;
    bit_reverse(a);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t start = 0; start < n; start += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = a[start + k];
                const Complex v = a[start + k + len / 2] * w;
                a[start + k] = u + v;
                a[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

void ifft(std::vector<Complex>& a) {
    for (auto& x : a) x = std::conj(x);
    fft(a);
    const double inv = 1.0 / static_cast<double>(a.size());
    for (auto& x : a) x = std::conj(x) * inv;
}

std::vector<Complex> dft_direct(const std::vector<Complex>& samples) {
    const std::size_t n = samples.size();
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0, 0.0);
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                                 static_cast<double>(n);
            acc += samples[t] * Complex(std::cos(angle), std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

ComplexImage fft2d(const ComplexImage& image) {
    SNOC_EXPECT(is_pow2(image.width) && is_pow2(image.height));
    SNOC_EXPECT(image.data.size() == image.width * image.height);
    ComplexImage out = image;
    // Rows.
    std::vector<Complex> row(out.width);
    for (std::size_t y = 0; y < out.height; ++y) {
        for (std::size_t x = 0; x < out.width; ++x) row[x] = out.at(x, y);
        fft(row);
        for (std::size_t x = 0; x < out.width; ++x) out.at(x, y) = row[x];
    }
    // Columns.
    std::vector<Complex> col(out.height);
    for (std::size_t x = 0; x < out.width; ++x) {
        for (std::size_t y = 0; y < out.height; ++y) col[y] = out.at(x, y);
        fft(col);
        for (std::size_t y = 0; y < out.height; ++y) out.at(x, y) = col[y];
    }
    return out;
}

ComplexImage dft2d_direct(const ComplexImage& image) {
    const std::size_t w = image.width;
    const std::size_t h = image.height;
    ComplexImage out = ComplexImage::zeros(w, h);
    for (std::size_t k2 = 0; k2 < h; ++k2) {
        for (std::size_t k1 = 0; k1 < w; ++k1) {
            Complex acc(0.0, 0.0);
            for (std::size_t n2 = 0; n2 < h; ++n2) {
                for (std::size_t n1 = 0; n1 < w; ++n1) {
                    const double angle =
                        -2.0 * std::numbers::pi *
                        (static_cast<double>(n1 * k1) / static_cast<double>(w) +
                         static_cast<double>(n2 * k2) / static_cast<double>(h));
                    acc += image.at(n1, n2) * Complex(std::cos(angle), std::sin(angle));
                }
            }
            out.at(k1, k2) = acc;
        }
    }
    return out;
}

std::array<ComplexImage, 4> decimate2d(const ComplexImage& image) {
    SNOC_EXPECT(image.width == image.height);
    SNOC_EXPECT(image.width % 2 == 0);
    const std::size_t half = image.width / 2;
    std::array<ComplexImage, 4> quads;
    for (std::size_t b = 0; b < 2; ++b)
        for (std::size_t a = 0; a < 2; ++a) {
            ComplexImage q = ComplexImage::zeros(half, half);
            for (std::size_t m2 = 0; m2 < half; ++m2)
                for (std::size_t m1 = 0; m1 < half; ++m1)
                    q.at(m1, m2) = image.at(2 * m1 + a, 2 * m2 + b);
            quads[b * 2 + a] = std::move(q);
        }
    return quads;
}

ComplexImage combine2d(const std::array<ComplexImage, 4>& quads) {
    const std::size_t half = quads[0].width;
    for (const auto& q : quads) {
        SNOC_EXPECT(q.width == half && q.height == half);
    }
    const std::size_t n = half * 2;
    ComplexImage out = ComplexImage::zeros(n, n);
    for (std::size_t k2 = 0; k2 < n; ++k2) {
        for (std::size_t k1 = 0; k1 < n; ++k1) {
            Complex acc(0.0, 0.0);
            for (std::size_t b = 0; b < 2; ++b) {
                for (std::size_t a = 0; a < 2; ++a) {
                    const double angle =
                        -2.0 * std::numbers::pi *
                        (static_cast<double>(a * k1) + static_cast<double>(b * k2)) /
                        static_cast<double>(n);
                    acc += Complex(std::cos(angle), std::sin(angle)) *
                           quads[b * 2 + a].at(k1 % half, k2 % half);
                }
            }
            out.at(k1, k2) = acc;
        }
    }
    return out;
}

double max_abs_diff(const ComplexImage& a, const ComplexImage& b) {
    SNOC_EXPECT(a.width == b.width && a.height == b.height);
    double m = 0.0;
    for (std::size_t i = 0; i < a.data.size(); ++i)
        m = std::max(m, std::abs(a.data[i] - b.data[i]));
    return m;
}

} // namespace snoc::apps
