// The sparse-activity round executor (ROADMAP item 1, in the spirit of
// Graphite's event-driven NoC scheduler).  The lockstep GossipNetwork
// walks every tile in every phase of every round, so cost scales with
// mesh *area* even when almost nothing is happening — the late gossip
// tail, crashed regions and low-p sweeps of Fig. 4-4/4-5 spend most of
// their cycles visiting idle tiles.  EventEngine executes the exact same
// round semantics while touching only:
//
//   * tiles with pending arrivals (the in-flight ring already buckets
//     events by round — it IS the round-bucketed event queue);
//   * tiles on the active list (non-empty send buffer: something to age
//     and something to forward);
//   * tiles hosting IP cores (an IP may act in any round);
//   * per-tile clocks only when a draw is owed (sigma_synchr > 0) or a
//     clock-scale island exists; otherwise local time is analytic.
//
// Equivalence is bit-exact, not approximate: every global RNG draw
// (overflow, upset, clock jitter) happens in the same serial order as the
// lockstep engine, and per-tile streams only ever advance from work on
// that tile.  test_engine_equivalence runs both engines over every
// scenario shape and requires NetworkMetrics, trace counts and elapsed
// time to match field-for-field.
//
// Sharding: the mesh is split into `shards` contiguous ascending tile
// strips run on the shared ThreadPool (common/parallel.hpp).  Parallel
// phases only touch per-tile / per-shard state; everything global
// (injector draws, ring appends, metric vectors, trace emission) runs in
// short serial passes in canonical order — ascending shard order, which
// equals ascending tile order for ANY strip count.  That is the whole
// proof that results are byte-identical at any --jobs value: per-shard
// buffers concatenate to the same sequence no matter where the strip
// boundaries fall.  See DESIGN.md §12.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"

namespace snoc {

class EventEngine {
public:
    /// `shards` requests that many tile strips (clamped to [1, tiles]).
    EventEngine(GossipNetwork& net, std::size_t shards);

    /// Snapshot post-on_start state: active tiles, core placement, knower
    /// counts, eviction baseline, clock regime.  Called exactly once by
    /// GossipNetwork::ensure_started; idempotent.
    void bootstrap();
    bool bootstrapped() const { return bootstrapped_; }

    /// Execute one full gossip round (the event-mode body of
    /// GossipNetwork::step; the caller has already ensure_started()).
    void step();

    /// O(shards): true iff no live tile holds a rumor.
    bool no_active_tiles() const;
    /// O(1): live tiles that ever held `id` (lockstep's tiles_knowing).
    std::size_t tiles_knowing(const MessageId& id) const;
    /// Matches clocks_.elapsed() bit-for-bit: analytic accumulation when
    /// no draws/islands exist, the real clock vector otherwise.
    double elapsed_seconds() const;
    std::size_t shard_count() const { return shards_.size(); }

    /// The active-set invariant (audited): active lists hold exactly the
    /// live tiles with non-empty send buffers, each once, ascending.
    bool active_set_consistent() const;

private:
    /// One pending delivery that survived the serial receive pass.
    struct Work {
        TileId dest{0};
        std::uint32_t seq{0}; ///< arrival order within the round's bucket.
        GossipNetwork::Arrival arrival;
    };
    /// One planned transmission out of the parallel forward pass; the
    /// serial pass replays these through enqueue_transmission in
    /// canonical order (so upset draws, skew checks, ring appends and
    /// metric vectors see the exact lockstep sequence).
    struct Plan {
        TileId from{0};
        TileId to{0};
        LinkId link{0};
        MessageId id{kNoTile, 0};
        std::shared_ptr<const std::vector<std::byte>> wire;
    };
    struct Shard {
        /// Live tiles with non-empty send buffers, ascending, unique.
        std::vector<TileId> active;
        /// Tiles whose buffer went empty -> non-empty this phase; merged
        /// into `active` at the next sync point.
        std::vector<TileId> newly_active;
        /// Live tiles hosting an IP core (static after bootstrap).
        std::vector<TileId> cores;
        // --- per-round scratch (capacity persists across rounds) -------
        std::vector<Work> arrivals;
        std::vector<Plan> plans;
        std::vector<TraceEvent> events;
        std::vector<MessageId> unicasts;
        std::vector<MessageId> inserted;
        NetworkMetrics delta; ///< scalar counters only; vectors stay empty.
        std::size_t evictions{0};
    };

    void receive_phase();
    void age_phase();
    void compute_phase();
    void forward_phase();
    void clock_phase();

    std::size_t shard_of(TileId t) const;
    /// Run fn(shard) for every shard, fanned out over the shared
    /// ThreadPool when shards > 1.  The caller participates (and can
    /// finish every shard alone if the pool is saturated by outer trial
    /// parallelism), so nesting inside run_trials cannot deadlock.
    void run_sharded(const std::function<void(std::size_t)>& fn);
    /// A sink wired to `sh`'s buffers: parallel phases write only here.
    GossipNetwork::StepSink shard_sink(Shard& sh);
    /// Canonical serial merge order over shards.  Ascending strips mean
    /// ascending tiles for any shard count; every serial pass that folds
    /// per-shard results into global state iterates via this helper.
    std::size_t shard_merge_index(std::size_t s) const;
    /// Fold one shard's scalar counter delta into net_.metrics_.
    void merge_delta(NetworkMetrics& delta);
    /// Flush buffered trace events / unicasts / knower increments /
    /// eviction counts of every shard, in canonical order.
    void merge_shard_effects();
    void merge_activations();

    GossipNetwork& net_;
    std::size_t requested_shards_;
    std::vector<Shard> shards_;
    bool bootstrapped_{false};

    /// sigma_synchr > 0 (per-tile duration draws owed every round) or a
    /// clock-scale island exists (skew between domains becomes non-zero):
    /// run the lockstep advance loop.  Otherwise local clocks are uniform
    /// and analytic: skew == 0, elapsed accumulates t_r per round.
    bool dense_clocks_{false};
    double elapsed_accum_{0.0};

    /// Live tiles that ever held a given rumor (exact: every successful
    /// insert is one new knower; crashes only roll at start).
    std::unordered_map<MessageId, std::size_t> knowers_;

    /// Cumulative send-buffer evictions observed through sinks (plus the
    /// bootstrap baseline) vs. how much has been folded into
    /// metrics_.overflow_drops — replicating the lockstep age-phase fold
    /// (and its deliberate sub-round staleness) without the O(N) scan.
    std::size_t evictions_seen_{0};
    std::size_t evictions_folded_{0};

    /// Round-bucket scratch for the serial receive pass.
    std::vector<TileId> backlog_touched_;
};

} // namespace snoc
