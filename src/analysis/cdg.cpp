#include "analysis/cdg.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "common/expect.hpp"

namespace snoc::analysis {

namespace {

bool tile_dead(const std::vector<bool>& dead, TileId t) {
    return !dead.empty() && dead[t];
}

} // namespace

std::vector<std::vector<std::size_t>>
strongly_connected_components(const std::vector<std::vector<std::size_t>>& adj) {
    const std::size_t n = adj.size();
    constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
    std::vector<std::size_t> index(n, kUnvisited), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::vector<std::vector<std::size_t>> sccs;
    std::size_t counter = 0;

    struct Frame {
        std::size_t node;
        std::size_t next_edge;
    };
    for (std::size_t start = 0; start < n; ++start) {
        if (index[start] != kUnvisited) continue;
        std::vector<Frame> work{{start, 0}};
        index[start] = low[start] = counter++;
        stack.push_back(start);
        on_stack[start] = true;
        while (!work.empty()) {
            Frame& frame = work.back();
            const std::size_t node = frame.node;
            bool advanced = false;
            while (frame.next_edge < adj[node].size()) {
                const std::size_t nxt = adj[node][frame.next_edge++];
                if (index[nxt] == kUnvisited) {
                    index[nxt] = low[nxt] = counter++;
                    stack.push_back(nxt);
                    on_stack[nxt] = true;
                    work.push_back(Frame{nxt, 0});
                    advanced = true;
                    break;
                }
                if (on_stack[nxt]) low[node] = std::min(low[node], index[nxt]);
            }
            if (advanced) continue;
            work.pop_back();
            if (!work.empty()) {
                const std::size_t parent = work.back().node;
                low[parent] = std::min(low[parent], low[node]);
            }
            if (low[node] == index[node]) {
                std::vector<std::size_t> comp;
                while (true) {
                    const std::size_t member = stack.back();
                    stack.pop_back();
                    on_stack[member] = false;
                    comp.push_back(member);
                    if (member == node) break;
                }
                if (comp.size() > 1) {
                    std::sort(comp.begin(), comp.end());
                    sccs.push_back(std::move(comp));
                }
            }
        }
    }
    std::sort(sccs.begin(), sccs.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return sccs;
}

namespace {

/// Shortest closed walk through `pivot` inside its SCC: BFS from pivot
/// over SCC-internal edges, then close via the cheapest edge back.
std::vector<LinkId> extract_cycle(const std::vector<std::set<LinkId>>& adj,
                                  const std::vector<std::size_t>& scc) {
    const std::size_t pivot = scc.front();
    std::vector<bool> in_scc(adj.size(), false);
    for (const std::size_t m : scc) in_scc[m] = true;

    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> parent(adj.size(), kNone);
    std::deque<std::size_t> queue{pivot};
    std::vector<bool> seen(adj.size(), false);
    seen[pivot] = true;
    std::size_t closer = kNone; // first BFS-discovered node with an edge to pivot.
    while (!queue.empty() && closer == kNone) {
        const std::size_t node = queue.front();
        queue.pop_front();
        for (const LinkId nxt : adj[node]) {
            if (!in_scc[nxt]) continue;
            if (nxt == pivot) {
                closer = node;
                break;
            }
            if (seen[nxt]) continue;
            seen[nxt] = true;
            parent[nxt] = node;
            queue.push_back(nxt);
        }
    }
    SNOC_ENSURE(closer != kNone && "SCC member lost its return path");
    std::vector<LinkId> cycle;
    for (std::size_t node = closer; node != kNone; node = parent[node])
        cycle.push_back(static_cast<LinkId>(node));
    std::reverse(cycle.begin(), cycle.end()); // pivot .. closer
    return cycle;
}

} // namespace

CdgResult analyze_cdg(const Topology& topo, const router::RoutingPolicy& policy,
                      const std::vector<bool>& dead) {
    SNOC_EXPECT(dead.empty() || dead.size() == topo.node_count());
    CdgResult result;
    const std::size_t links = topo.link_count();
    std::vector<std::set<LinkId>> adj(links);
    std::vector<bool> ever_reached(links, false);

    for (LinkId l = 0; l < links; ++l) {
        const LinkEnd& end = topo.link(l);
        if (!tile_dead(dead, end.from) && !tile_dead(dead, end.to))
            ++result.channels;
    }

    std::vector<bool> reached(links);
    for (TileId d = 0; d < topo.node_count(); ++d) {
        if (tile_dead(dead, d)) continue;
        std::fill(reached.begin(), reached.end(), false);
        std::deque<LinkId> frontier;
        // Injection seeds: the channels the policy names at every source.
        for (TileId s = 0; s < topo.node_count(); ++s) {
            if (s == d || tile_dead(dead, s)) continue;
            const auto& nbrs = topo.neighbours(s);
            const auto& out = topo.out_links(s);
            for (const std::size_t p : policy.candidates(topo, s, kNoTile, d, dead)) {
                if (tile_dead(dead, nbrs[p])) continue;
                if (!reached[out[p]]) {
                    reached[out[p]] = true;
                    frontier.push_back(out[p]);
                }
            }
        }
        // Transitive closure: a packet holding (u -> v) en route to d may
        // next request every channel the policy names at v.
        while (!frontier.empty()) {
            const LinkId l = frontier.front();
            frontier.pop_front();
            const LinkEnd& end = topo.link(l);
            if (end.to == d) continue; // ejects; no further dependency.
            const auto& nbrs = topo.neighbours(end.to);
            const auto& out = topo.out_links(end.to);
            for (const std::size_t p :
                 policy.candidates(topo, end.to, end.from, d, dead)) {
                if (tile_dead(dead, nbrs[p])) continue;
                const LinkId next = out[p];
                adj[l].insert(next);
                if (!reached[next]) {
                    reached[next] = true;
                    frontier.push_back(next);
                }
            }
        }
        for (LinkId l = 0; l < links; ++l)
            if (reached[l]) ever_reached[l] = true;
    }

    for (LinkId l = 0; l < links; ++l) {
        if (ever_reached[l]) ++result.reachable;
        result.dependencies += adj[l].size();
    }

    std::vector<std::vector<std::size_t>> plain(links);
    for (LinkId l = 0; l < links; ++l)
        plain[l].assign(adj[l].begin(), adj[l].end());
    const auto sccs = strongly_connected_components(plain);
    if (!sccs.empty()) result.cycle = extract_cycle(adj, sccs.front());
    return result;
}

std::string cycle_to_string(const Topology& topo,
                            const std::vector<LinkId>& cycle) {
    if (cycle.empty()) return "(acyclic)";
    std::ostringstream os;
    const auto tile = [&](TileId t) {
        std::ostringstream ts;
        if (topo.is_grid())
            ts << '(' << topo.x_of(t) << ',' << topo.y_of(t) << ')';
        else
            ts << 't' << t;
        return ts.str();
    };
    // Consecutive channels share their middle tile and the last feeds the
    // first, so printing every downstream tile closes the walk exactly.
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const LinkEnd& end = topo.link(cycle[i]);
        if (i == 0)
            os << tile(end.from);
        os << "->" << tile(end.to);
    }
    return os.str();
}

} // namespace snoc::analysis
