# Empty dependencies file for ablation_wormhole_vs_gossip.
# This may be replaced when dependencies are built.
