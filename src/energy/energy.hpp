// Energy accounting (Sec. 3.3.2, Eq. 3):
//     E_comm = N_packets * S * E_bit
// plus the 0.25 um technology constants of the Fig. 4-6 comparison:
// a NoC link runs at 381 MHz and burns 2.4e-10 J/bit; the shared bus runs
// at 43 MHz and burns 21.6e-10 J/bit (computation energy is out of scope,
// exactly as in the thesis).
#pragma once

#include <cstddef>

#include "core/metrics.hpp"

namespace snoc {

struct Technology {
    double link_frequency_hz{381e6};
    double link_ebit_joules{2.4e-10};
    double bus_frequency_hz{43e6};
    double bus_ebit_joules{21.6e-10};

    /// The 0.25 um process of Sec. 4.1.4 (M320C50 DSP tiles).
    static Technology cmos_025um() { return {}; }
};

struct EnergyReport {
    double joules{0.0};               ///< total communication energy.
    double joules_per_useful_bit{0.0};///< energy per *application* bit.
    double seconds{0.0};              ///< communication latency.
    double energy_delay_product{0.0}; ///< J*s per useful bit (Sec. 4.1.4).
};

/// Eq. 3 for a gossip run.  `useful_bits` is the number of distinct
/// application payload bits (redundant retransmissions are the overhead
/// stochastic communication deliberately spends).
EnergyReport noc_energy(const NetworkMetrics& metrics, const Technology& tech,
                        double elapsed_seconds, std::size_t useful_bits);

/// Energy/latency for `bits` crossing the shared bus back-to-back.
EnergyReport bus_energy(std::size_t total_bits, const Technology& tech,
                        std::size_t useful_bits);

} // namespace snoc
