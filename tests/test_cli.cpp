#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

CliArgs make(std::vector<std::string> args) {
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    std::vector<char*> argv;
    for (auto& s : storage) argv.push_back(s.data());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, BareFlags) {
    const auto args = make({"--csv", "--verbose"});
    EXPECT_TRUE(args.has("csv"));
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.has("seed"));
    EXPECT_FALSE(args.value("csv").has_value());
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, EqualsSyntax) {
    const auto args = make({"--seed=42", "--p=0.75", "--name=fig4_4"});
    EXPECT_EQ(args.get_u64("seed", 0), 42u);
    EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.75);
    EXPECT_EQ(args.get_string("name", ""), "fig4_4");
}

TEST(Cli, SpaceSyntax) {
    const auto args = make({"--repeats", "12", "--csv"});
    EXPECT_EQ(args.get_u64("repeats", 0), 12u);
    EXPECT_TRUE(args.has("csv"));
}

TEST(Cli, PositionalArguments) {
    const auto args = make({"input.cnf", "--seed=1", "out.csv"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.cnf");
    EXPECT_EQ(args.positional()[1], "out.csv");
}

TEST(Cli, DefaultsWhenAbsent) {
    const auto args = make({});
    EXPECT_EQ(args.get_u64("seed", 7), 7u);
    EXPECT_DOUBLE_EQ(args.get_double("p", 0.5), 0.5);
    EXPECT_EQ(args.get_string("name", "x"), "x");
}

TEST(Cli, MalformedNumbersThrow) {
    const auto args = make({"--seed=abc", "--p=1.2.3"});
    EXPECT_THROW(args.get_u64("seed", 0), ContractViolation);
    EXPECT_THROW(args.get_double("p", 0.0), ContractViolation);
}

TEST(Cli, UnknownOptionDetection) {
    const auto args = make({"--csv", "--sedd=1"});
    const auto unknown = args.unknown_options({"csv", "seed", "repeats"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "sedd");
}

TEST(Cli, LastValueWins) {
    const auto args = make({"--seed=1", "--seed=2"});
    EXPECT_EQ(args.get_u64("seed", 0), 2u);
}

TEST(BenchOptions, DefaultsWhenNoFlags) {
    const auto opt = parse_bench_options(make({}), 12);
    EXPECT_FALSE(opt.csv);
    EXPECT_FALSE(opt.json);
    EXPECT_EQ(opt.repeats, 12u);
    EXPECT_GE(opt.jobs, 1u);
    EXPECT_EQ(opt.seed, 0u);
}

TEST(BenchOptions, ParsesTheUniformFlagSet) {
    const auto opt = parse_bench_options(
        make({"--csv", "--repeats=7", "--jobs=3", "--seed=42"}), 12);
    EXPECT_TRUE(opt.csv);
    EXPECT_FALSE(opt.json);
    EXPECT_EQ(opt.repeats, 7u);
    EXPECT_EQ(opt.jobs, 3u);
    EXPECT_EQ(opt.seed, 42u);
}

TEST(BenchOptions, JsonFlag) {
    const auto opt = parse_bench_options(make({"--json"}), 1);
    EXPECT_TRUE(opt.json);
    EXPECT_FALSE(opt.csv);
}

TEST(BenchOptions, ZeroRepeatsFallsBackToDefault) {
    const auto opt = parse_bench_options(make({"--repeats=0"}), 9);
    EXPECT_EQ(opt.repeats, 9u);
}

} // namespace
} // namespace snoc
