"""Registry cross-checks: the X-macro / counter tables that must stay in
lock-step with the code that feeds them.

* Every `TraceEventKind` in the SNOC_TRACE_EVENT_KIND_LIST X-macro must
  have at least one emit site (a `TraceEventKind::K` mention in src/
  outside the vocabulary header and the exporters that merely enumerate
  kinds) and at least one test reference (enumerator or wire name in
  tests/) — an orphan kind is dead vocabulary that silently skews every
  "all kinds" table.
* Every scalar `NetworkMetrics` counter must be named in the telemetry
  metrics-summary exporter and in the invariant auditor — a counter
  missing from either escapes both the artifact record and the
  self-consistency audit.
* Every `SNOC_CHECK(level, ...)` level argument must be the literal 0, 1
  or 2 (the only levels the build system accepts).
* Every `MetricId` in the SNOC_METRIC_LIST X-macro must have at least
  one emit site (`MetricId::M` in src/, bench/ or tools/ outside the
  registry's own header/impl) and its wire name must appear in both
  committed exposition goldens (JSON and Prometheus) — an orphan metric
  is dashboard vocabulary nothing ever feeds, and a golden missing a
  wire name means the expositions drifted from the table.
* Every `BackendKind` enumerator must appear in an
  `engine-equivalence-backends:` marker inside tests/ — the marker names
  the backends the engine-equivalence suites exercise, so a backend
  registered without joining them escapes the lockstep-vs-event and
  shard-invariance proofs.
"""

from __future__ import annotations

import re

from model import Finding, Project

TRACE_HEADER = "src/sim/trace.hpp"
METRIC_REGISTRY_HEADER = "src/telemetry/metrics_registry.hpp"
METRIC_GOLDENS = ("tests/golden/metrics_registry.json.golden",
                  "tests/golden/metrics_registry.prom.golden")
METRICS_HEADER = "src/core/metrics.hpp"
AUDITOR_SOURCE = "src/check/invariant_auditor.cpp"
METRICS_EXPORTER = "src/telemetry/export.cpp"
INTERCONNECT_HEADER = "src/core/interconnect.hpp"

XMACRO_ENTRY = re.compile(r'\bX\(\s*(\w+)\s*,\s*"([^"]+)"\s*\)')
# 4-arg metric rows: X(kind, Name, "wire", "help ...").  Long rows wrap
# with a backslash continuation between Name and the wire string.
METRIC_ENTRY = re.compile(
    r'\bX\(\s*(counter|gauge|histogram)\s*,\s*(\w+)\s*,[\s\\]*"([^"]+)"')
METRICS_FIELD = re.compile(r"^\s*std::size_t\s+(\w+)\s*\{0\}\s*;", re.MULTILINE)
SNOC_CHECK_CALL = re.compile(r"\bSNOC_CHECK\(\s*([^,\s][^,]*?)\s*,")
BACKEND_ENUMERATOR = re.compile(r"^\s*([A-Z]\w*)\s*,", re.MULTILINE)
EQUIVALENCE_MARKER = re.compile(r"engine-equivalence-backends:\s*([a-z][a-z ]*)")


def parse_backend_kinds(project: Project) -> list[str]:
    header = project.files.get(INTERCONNECT_HEADER)
    if header is None:
        return []
    # X-macro shape first: the SNOC_BACKEND_KIND_LIST rows up to the enum
    # that expands them.  (Scan raw text — the rows carry comments.)
    start = header.raw.find("SNOC_BACKEND_KIND_LIST(X)")
    if start >= 0:
        end = header.raw.find("enum class BackendKind", start)
        region = header.raw[start:end if end > 0 else len(header.raw)]
        names = [name for name, _wire in XMACRO_ENTRY.findall(region)]
        if names:
            return names
    # Fallback: a hand-written enum body.
    start = header.code.find("enum class BackendKind")
    if start < 0:
        return []
    end = header.code.find("};", start)
    region = header.code[start:end if end > 0 else len(header.code)]
    return BACKEND_ENUMERATOR.findall(region)


def parse_trace_kinds(project: Project) -> list[tuple[str, str]]:
    header = project.files.get(TRACE_HEADER)
    if header is None:
        return []
    start = header.raw.find("SNOC_TRACE_EVENT_KIND_LIST(X)")
    if start < 0:
        return []
    end = header.raw.find("enum class TraceEventKind", start)
    region = header.raw[start:end if end > 0 else len(header.raw)]
    return XMACRO_ENTRY.findall(region)


def parse_metric_entries(project: Project) -> list[tuple[str, str, str]]:
    """(kind, enumerator, wire) rows of SNOC_METRIC_LIST, in table order."""
    header = project.files.get(METRIC_REGISTRY_HEADER)
    if header is None:
        return []
    start = header.raw.find("#define SNOC_METRIC_LIST(X)")
    if start < 0:
        return []
    end = header.raw.find("enum class MetricId", start)
    region = header.raw[start:end if end > 0 else len(header.raw)]
    return METRIC_ENTRY.findall(region)


def parse_metrics_counters(project: Project) -> list[str]:
    header = project.files.get(METRICS_HEADER)
    if header is None:
        return []
    start = header.code.find("struct NetworkMetrics")
    if start < 0:
        return []
    return METRICS_FIELD.findall(header.code[start:])


def check_registries(project: Project) -> list[Finding]:
    findings: list[Finding] = []

    kinds = parse_trace_kinds(project)
    if kinds:
        # Emit sites: src/ minus the vocabulary header/impl and the
        # telemetry layer (exporters enumerate every kind by design, so
        # counting them would make any kind look alive).
        emit_text = "\n".join(
            f.code for f in project.by_top("src")
            if not f.rel.startswith(("src/sim/trace.", "src/telemetry/")))
        test_code = "\n".join(f.code for f in project.by_top("tests"))
        test_raw = "\n".join(f.raw for f in project.by_top("tests"))
        for name, wire in kinds:
            if f"TraceEventKind::{name}" not in emit_text:
                findings.append(Finding(
                    rule="registry-event-emit", file=TRACE_HEADER, line=0,
                    message=f"TraceEventKind::{name} has no emit site in src/ "
                            "(outside trace.hpp and the exporters); dead "
                            "vocabulary skews every all-kinds table",
                    key=f"emit:{name}"))
            if (f"TraceEventKind::{name}" not in test_code
                    and f'"{wire}"' not in test_raw):
                findings.append(Finding(
                    rule="registry-event-test", file=TRACE_HEADER, line=0,
                    message=f"TraceEventKind::{name} (wire \"{wire}\") is "
                            "never referenced by a test in tests/",
                    key=f"test:{name}"))

    counters = parse_metrics_counters(project)
    if counters:
        exporter = project.files.get(METRICS_EXPORTER)
        auditor = project.files.get(AUDITOR_SOURCE)
        for counter in counters:
            if exporter is not None and \
                    not re.search(rf"\b{counter}\b", exporter.code):
                findings.append(Finding(
                    rule="registry-metrics-telemetry", file=METRICS_HEADER,
                    line=0,
                    message=f"NetworkMetrics::{counter} is missing from the "
                            f"metrics summary exporter ({METRICS_EXPORTER})",
                    key=f"telemetry:{counter}"))
            if auditor is not None and \
                    not re.search(rf"\b{counter}\b", auditor.code):
                findings.append(Finding(
                    rule="registry-metrics-audit", file=METRICS_HEADER, line=0,
                    message=f"NetworkMetrics::{counter} is missing from the "
                            f"invariant auditor's self-consistency/"
                            f"monotonicity checks ({AUDITOR_SOURCE})",
                    key=f"audit:{counter}"))

    metrics = parse_metric_entries(project)
    if metrics:
        # Emit sites: anywhere in src/, bench/ or tools/ except the
        # registry's own header/impl (which enumerates every id by
        # construction, so counting it would make any metric look alive).
        emit_text = "\n".join(
            f.code for f in project.by_top("src", "bench", "tools")
            if not f.rel.startswith("src/telemetry/metrics_registry."))
        goldens = {}
        for rel in METRIC_GOLDENS:
            path = project.root / rel
            if path.exists():
                goldens[rel] = path.read_text()
            else:
                findings.append(Finding(
                    rule="registry-metric-exposition",
                    file=METRIC_REGISTRY_HEADER, line=0,
                    message=f"exposition golden {rel} is missing — run "
                            "test_metrics_registry with SNOC_UPDATE_GOLDEN=1 "
                            "to capture it",
                    key=f"metric-golden:{rel}"))
        for kind, name, wire in metrics:
            if f"MetricId::{name}" not in emit_text:
                findings.append(Finding(
                    rule="registry-metric-emit",
                    file=METRIC_REGISTRY_HEADER, line=0,
                    message=f"MetricId::{name} ({kind} \"{wire}\") has no "
                            "emit site outside the registry itself — an "
                            "orphan metric is dashboard vocabulary nothing "
                            "ever feeds",
                    key=f"metric-emit:{name}"))
            for rel, text in goldens.items():
                if wire not in text:
                    findings.append(Finding(
                        rule="registry-metric-exposition",
                        file=METRIC_REGISTRY_HEADER, line=0,
                        message=f"metric \"{wire}\" is missing from {rel} — "
                                "the committed exposition drifted from "
                                "SNOC_METRIC_LIST; refresh the golden",
                        key=f"metric-exposition:{wire}:{rel}"))

    backends = parse_backend_kinds(project)
    if backends:
        # The markers live in comments, so scan raw test text; every
        # marker found contributes its backend names (several suites may
        # split coverage between them).
        covered: set[str] = set()
        for f in project.by_top("tests"):
            for m in EQUIVALENCE_MARKER.finditer(f.raw):
                covered.update(m.group(1).split())
        for name in backends:
            if name.lower() not in covered:
                findings.append(Finding(
                    rule="registry-backend-equivalence",
                    file=INTERCONNECT_HEADER, line=0,
                    message=f"BackendKind::{name} is missing from every "
                            "engine-equivalence-backends marker in tests/ — "
                            "extend the engine-equivalence suite to cover the "
                            "new backend and add it to the marker list",
                    key=f"backend:{name}"))

    define_line = re.compile(r"^\s*#\s*define\b")
    for src in project.by_top("src", "bench", "tests"):
        for lineno, line in enumerate(src.code_lines(), 1):
            if define_line.match(line):  # the macro's own definition.
                continue
            for m in SNOC_CHECK_CALL.finditer(line):
                level = m.group(1).strip()
                if level not in {"0", "1", "2"}:
                    findings.append(Finding(
                        rule="check-level", file=src.rel, line=lineno,
                        message=f"SNOC_CHECK level '{level}' is not the "
                                "literal 0, 1 or 2 (the only levels "
                                "SNOC_CHECK_LEVEL accepts)",
                        key=f"level:{level}"))
    return findings
