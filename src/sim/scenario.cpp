#include "sim/scenario.hpp"

#include <algorithm>

#include "check/invariant_auditor.hpp"
#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace snoc {

double SweepPoint::value(std::string_view axis) const {
    for (const auto& c : coords)
        if (c.name == axis) return c.value;
    SNOC_EXPECT(false && "unknown sweep axis");
    return 0.0;
}

std::size_t SweepPoint::index_of(std::string_view axis) const {
    for (const auto& c : coords)
        if (c.name == axis) return c.index;
    SNOC_EXPECT(false && "unknown sweep axis");
    return 0;
}

std::string SweepPoint::label() const {
    std::string out;
    for (const auto& c : coords) {
        if (!out.empty()) out += ' ';
        out += c.name + '=' + format_number(c.value, 4);
    }
    return out;
}

CellStats aggregate(const std::vector<RunReport>& reports) {
    CellStats stats;
    if (reports.empty()) return stats;
    Accumulator rounds, seconds, transmissions, bits, deliveries, joules;
    std::size_t completed = 0;
    for (const RunReport& r : reports) {
        stats.attempts += r.attempts;
        stats.audit_violations += r.audit_violations;
        if (!r.completed) continue;
        ++completed;
        rounds.add(static_cast<double>(r.rounds));
        seconds.add(r.seconds);
        transmissions.add(static_cast<double>(r.transmissions));
        bits.add(static_cast<double>(r.bits));
        deliveries.add(static_cast<double>(r.deliveries));
        joules.add(r.joules);
    }
    stats.completion_rate =
        static_cast<double>(completed) / static_cast<double>(reports.size());
    if (completed > 0) {
        stats.rounds = rounds.mean();
        stats.seconds = seconds.mean();
        stats.transmissions = transmissions.mean();
        stats.bits = bits.mean();
        stats.deliveries = deliveries.mean();
        stats.joules = joules.mean();
    }
    return stats;
}

ScenarioRunner::ScenarioRunner(ExperimentSpec spec) : spec_(std::move(spec)) {
    SNOC_EXPECT(spec_.max_attempts >= 1);
    const bool has_trial = static_cast<bool>(spec_.trial);
    const bool has_backend =
        static_cast<bool>(spec_.backend) && static_cast<bool>(spec_.trace);
    SNOC_EXPECT(has_trial != has_backend &&
                "set exactly one of trial or backend+trace");
    for (const auto& axis : spec_.axes) SNOC_EXPECT(!axis.values.empty());
}

std::vector<SweepPoint> ScenarioRunner::cells() const {
    std::size_t n = 1;
    for (const auto& axis : spec_.axes) n *= axis.values.size();
    std::vector<SweepPoint> points;
    points.reserve(n);
    for (std::size_t cell = 0; cell < n; ++cell) {
        SweepPoint p;
        p.coords.resize(spec_.axes.size());
        // Row-major: the first axis varies slowest.
        std::size_t rem = cell;
        for (std::size_t a = spec_.axes.size(); a-- > 0;) {
            const auto& axis = spec_.axes[a];
            const std::size_t i = rem % axis.values.size();
            rem /= axis.values.size();
            p.coords[a] = {axis.name, i, axis.values[i]};
        }
        points.push_back(std::move(p));
    }
    return points;
}

RunReport ScenarioRunner::run_trial(const SweepPoint& point,
                                    std::size_t repeat) const {
    const std::uint64_t seed0 =
        spec_.base_seed + static_cast<std::uint64_t>(repeat);
    RunReport report;
    for (std::size_t attempt = 0; attempt < spec_.max_attempts; ++attempt) {
        const std::uint64_t seed =
            seed0 + static_cast<std::uint64_t>(attempt) * spec_.retry_seed_stride;
        if (spec_.trial) {
            report = spec_.trial(point, seed);
        } else {
            auto backend = spec_.backend(point, seed);
            SNOC_ENSURE(backend != nullptr);
            // Per-trial auditor: trials run in parallel, so the auditor
            // must be private to this trial; its violation count lands in
            // report.audit_violations (stamped by the adapter).
            check::InvariantAuditor auditor;
            if (spec_.audit) backend->set_auditor(&auditor);
            report = backend->run(spec_.trace(point), spec_.max_rounds);
        }
        report.seed = seed;
        report.attempts = attempt + 1;
        if (report.completed) break;
    }
    return report;
}

std::vector<CellResult> ScenarioRunner::run() {
    const auto points = cells();
    const std::size_t n_trials = points.size() * spec_.repeats;

    // Flatten (cell, repeat) onto the trial index so the whole sweep
    // shares one fan-out; results land in deterministic slots.
    const auto reports = run_trials(
        n_trials,
        [&](std::uint64_t i) {
            const std::size_t cell = static_cast<std::size_t>(i) / spec_.repeats;
            const std::size_t repeat = static_cast<std::size_t>(i) % spec_.repeats;
            return run_trial(points[cell], repeat);
        },
        spec_.jobs);

    std::vector<CellResult> results;
    results.reserve(points.size());
    for (std::size_t c = 0; c < points.size(); ++c) {
        CellResult cell;
        cell.point = points[c];
        cell.reports.assign(reports.begin() + static_cast<std::ptrdiff_t>(c * spec_.repeats),
                            reports.begin() +
                                static_cast<std::ptrdiff_t>((c + 1) * spec_.repeats));
        cell.stats = aggregate(cell.reports);
        results.push_back(std::move(cell));
    }
    return results;
}

Table ScenarioRunner::summary_table(const std::vector<CellResult>& cells) {
    std::vector<std::string> headers;
    if (!cells.empty())
        for (const auto& c : cells.front().point.coords) headers.push_back(c.name);
    for (const char* h : {"completion [%]", "rounds", "latency [s]",
                          "transmissions", "bits", "energy [J]", "attempts"})
        headers.emplace_back(h);
    Table table(headers);
    for (const auto& cell : cells) {
        std::vector<std::string> row;
        for (const auto& c : cell.point.coords)
            row.push_back(format_number(c.value, 4));
        const CellStats& s = cell.stats;
        row.push_back(format_number(100.0 * s.completion_rate, 1));
        row.push_back(format_number(s.rounds, 1));
        row.push_back(format_sci(s.seconds, 2));
        row.push_back(format_number(s.transmissions, 0));
        row.push_back(format_number(s.bits, 0));
        row.push_back(format_sci(s.joules, 2));
        row.push_back(std::to_string(s.attempts));
        table.add_row(row);
    }
    return table;
}

} // namespace snoc
