#include "telemetry/query.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <sstream>

#include "telemetry/export.hpp"

namespace snoc::tracequery {

namespace {

// Minimal field extraction over the writer's flat one-object-per-line
// format.  Tolerant by design: a line missing a required field (or a
// kind this binary doesn't know) is counted in `skipped`, not fatal, so
// newer dumps degrade gracefully in older tools.
std::optional<std::uint64_t> find_number(std::string_view line,
                                         std::string_view key) {
    const std::string needle = "\"" + std::string(key) + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string_view::npos) return std::nullopt;
    const char* begin = line.data() + pos + needle.size();
    const char* end = line.data() + line.size();
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    return value;
}

std::optional<std::string_view> find_string(std::string_view line,
                                            std::string_view key) {
    const std::string needle = "\"" + std::string(key) + "\":\"";
    const auto pos = line.find(needle);
    if (pos == std::string_view::npos) return std::nullopt;
    const auto start = pos + needle.size();
    const auto close = line.find('"', start);
    if (close == std::string_view::npos) return std::nullopt;
    return line.substr(start, close - start);
}

std::size_t kind_index(TraceEventKind k) { return static_cast<std::size_t>(k); }

bool is_drop(TraceEventKind k) {
    switch (k) {
    case TraceEventKind::CrcDrop:
    case TraceEventKind::FecUncorrectable:
    case TraceEventKind::OverflowDrop:
    case TraceEventKind::CrashDrop:
    case TraceEventKind::BufferEvicted:
        return true;
    default:
        return false;
    }
}

} // namespace

std::optional<MessageId> parse_message_id(std::string_view text) {
    const auto colon = text.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::uint32_t origin = 0, sequence = 0;
    const auto* s = text.data();
    const auto r1 = std::from_chars(s, s + colon, origin);
    if (r1.ec != std::errc{} || r1.ptr != s + colon) return std::nullopt;
    const auto* rest = s + colon + 1;
    const auto* end = s + text.size();
    const auto r2 = std::from_chars(rest, end, sequence);
    if (r2.ec != std::errc{} || r2.ptr != end) return std::nullopt;
    return MessageId{origin, sequence};
}

LoadResult load_jsonl(std::istream& is) {
    LoadResult result;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (!result.postmortem && line.find("\"postmortem\":1") !=
                                      std::string::npos) {
            PostmortemHeader header;
            if (const auto v = find_string(line, "reason"))
                header.reason = std::string(*v);
            if (const auto v = find_string(line, "detail"))
                header.detail = std::string(*v);
            if (const auto v = find_string(line, "experiment"))
                header.experiment = std::string(*v);
            if (const auto v = find_string(line, "backend"))
                header.backend = std::string(*v);
            if (const auto v = find_number(line, "seed")) header.seed = *v;
            if (const auto v = find_number(line, "events"))
                header.events = static_cast<std::size_t>(*v);
            if (const auto v = find_number(line, "events_overwritten"))
                header.events_overwritten = static_cast<std::size_t>(*v);
            if (const auto v = find_number(line, "first_round"))
                header.first_round = static_cast<Round>(*v);
            if (const auto v = find_number(line, "last_round"))
                header.last_round = static_cast<Round>(*v);
            result.postmortem = std::move(header);
            continue;
        }
        const auto round = find_number(line, "round");
        const auto kind_name = find_string(line, "kind");
        const auto tile = find_number(line, "tile");
        const auto kind =
            kind_name ? trace_kind_from_string(*kind_name) : std::nullopt;
        if (!round || !kind || !tile) {
            ++result.skipped;
            continue;
        }
        TraceEvent e;
        e.round = static_cast<Round>(*round);
        e.kind = *kind;
        e.tile = static_cast<TileId>(*tile);
        if (const auto peer = find_number(line, "peer"))
            e.peer = static_cast<TileId>(*peer);
        if (const auto msg = find_string(line, "msg"))
            if (const auto id = parse_message_id(*msg)) e.message = *id;
        result.events.push_back(e);
    }
    return result;
}

LoadResult load_jsonl_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open()) return {};
    return load_jsonl(is);
}

std::vector<TraceEvent> since_round(const std::vector<TraceEvent>& events,
                                    Round round) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events)
        if (e.round >= round) out.push_back(e);
    return out;
}

std::vector<TraceEvent> last_rounds(const std::vector<TraceEvent>& events,
                                    std::size_t n) {
    if (events.empty() || n == 0) return {};
    Round last = 0;
    for (const TraceEvent& e : events) last = std::max(last, e.round);
    const Round cutoff =
        n > static_cast<std::size_t>(last) ? 0
                                           : last - static_cast<Round>(n) + 1;
    return since_round(events, cutoff);
}

std::string header_summary(const PostmortemHeader& header) {
    std::ostringstream os;
    os << "post-mortem: " << header.reason << '\n';
    os << "  detail:     " << header.detail << '\n';
    os << "  experiment: " << header.experiment << '\n';
    os << "  backend:    " << header.backend << '\n';
    os << "  seed:       " << header.seed << '\n';
    os << "  events:     " << header.events << " retained, "
       << header.events_overwritten << " overwritten, rounds "
       << header.first_round << ".." << header.last_round << '\n';
    return os.str();
}

std::string summary(const std::vector<TraceEvent>& events) {
    std::array<std::size_t, kTraceEventKinds> counts{};
    Round last_round = 0;
    std::set<TileId> tiles;
    std::set<MessageId> messages;
    for (const TraceEvent& e : events) {
        ++counts[kind_index(e.kind)];
        last_round = std::max(last_round, e.round);
        tiles.insert(e.tile);
        if (e.message.origin != kNoTile) messages.insert(e.message);
    }
    std::size_t drops = 0;
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        if (is_drop(static_cast<TraceEventKind>(k))) drops += counts[k];
    std::ostringstream os;
    os << "events " << events.size() << ", rounds "
       << (events.empty() ? 0 : last_round + 1) << ", tiles " << tiles.size()
       << ", messages " << messages.size() << '\n';
    os << "created " << counts[kind_index(TraceEventKind::MessageCreated)]
       << ", transmitted " << counts[kind_index(TraceEventKind::Transmitted)]
       << ", delivered " << counts[kind_index(TraceEventKind::Delivered)]
       << ", drops " << drops << '\n';
    os << "by kind:\n";
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        os << "  " << kTraceEventKindNames[k] << ' ' << counts[k] << '\n';
    return os.str();
}

std::string per_round(const std::vector<TraceEvent>& events) {
    std::size_t rounds = 0;
    for (const TraceEvent& e : events)
        rounds = std::max(rounds, static_cast<std::size_t>(e.round) + 1);
    std::vector<std::array<std::size_t, kTraceEventKinds>> table(rounds);
    for (const TraceEvent& e : events) ++table[e.round][kind_index(e.kind)];
    std::ostringstream os;
    os << "round";
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        os << ' ' << kTraceEventKindNames[k];
    os << '\n';
    for (std::size_t r = 0; r < rounds; ++r) {
        os << r;
        for (std::size_t k = 0; k < kTraceEventKinds; ++k)
            os << ' ' << table[r][k];
        os << '\n';
    }
    return os.str();
}

std::string lifeline(const std::vector<TraceEvent>& events, MessageId id) {
    std::ostringstream os;
    std::size_t touched = 0;
    for (const TraceEvent& e : events) {
        if (!(e.message == id)) continue;
        ++touched;
        os << format_event(e) << '\n';
    }
    if (touched == 0)
        os << "no events for msg " << id.origin << ':' << id.sequence << '\n';
    return os.str();
}

std::string top_tiles(const std::vector<TraceEvent>& events, std::size_t k) {
    std::map<TileId, std::size_t> drops_by_tile;
    for (const TraceEvent& e : events)
        if (is_drop(e.kind)) ++drops_by_tile[e.tile];
    std::vector<std::pair<TileId, std::size_t>> rows(drops_by_tile.begin(),
                                                     drops_by_tile.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    if (rows.size() > k) rows.resize(k);
    std::ostringstream os;
    os << "tile drops\n";
    for (const auto& [tile, drops] : rows) os << tile << ' ' << drops << '\n';
    return os.str();
}

std::string top_links(const std::vector<TraceEvent>& events, std::size_t k) {
    std::map<std::pair<TileId, TileId>, std::size_t> by_link;
    for (const TraceEvent& e : events)
        if (e.kind == TraceEventKind::Transmitted && e.peer != kNoTile)
            ++by_link[{e.tile, e.peer}];
    std::vector<std::pair<std::pair<TileId, TileId>, std::size_t>> rows(
        by_link.begin(), by_link.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    if (rows.size() > k) rows.resize(k);
    std::ostringstream os;
    os << "from to transmissions\n";
    for (const auto& [link, count] : rows)
        os << link.first << ' ' << link.second << ' ' << count << '\n';
    return os.str();
}

} // namespace snoc::tracequery
