// Backend-independent application traffic description.
//
// An application's communication is a sequence of *phases*; all messages
// inside a phase are independent, and a phase only starts after the
// previous one completed (master -> slaves, then slaves -> master, ...).
// The same trace can be realised on the stochastic NoC, on the shared-bus
// baseline (Fig. 4-6) or on a deterministically routed mesh (ablation).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace snoc {

struct LogicalMessage {
    TileId src{0};
    TileId dst{0};
    std::size_t bits{0};
};

struct TrafficPhase {
    std::vector<LogicalMessage> messages;
};

struct TrafficTrace {
    std::vector<TrafficPhase> phases;

    std::size_t message_count() const {
        std::size_t n = 0;
        for (const auto& p : phases) n += p.messages.size();
        return n;
    }

    /// Total application-payload bits — the "useful bits" denominator of
    /// the J/bit comparisons.
    std::size_t useful_bits() const {
        std::size_t n = 0;
        for (const auto& p : phases)
            for (const auto& m : p.messages) n += m.bits;
        return n;
    }
};

} // namespace snoc
