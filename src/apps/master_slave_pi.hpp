// Sec. 4.1.1 — Master - Slave computation of pi (Eq. 4):
//
//   pi  =  integral_0^1 4/(1+x^2) dx
//      ~=  (1/n) * sum_{i=0}^{n-1} 4 / (1 + ((i + 1/2)/n)^2)
//
// The sum is split into `slave_count` partial sums computed in parallel.
// The master broadcasts each task's summation limits (it does not need to
// know where the slaves live), the slaves reply with partial sums, the
// master assembles pi.  Slaves may be *duplicated*: replicas emit result
// messages with a shared task-level id, so the network dedups them and the
// master processes whichever copy arrives first (Sec. 4.1.1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/ip_core.hpp"
#include "noc/traffic.hpp"

namespace snoc::apps {

inline constexpr std::uint32_t kPiWorkTag = 0x5049574B;   // 'PIWK'
inline constexpr std::uint32_t kPiResultTag = 0x50495253; // 'PIRS'

/// Reference value: the full Eq. 4 sum evaluated serially.
double pi_reference(std::uint64_t terms);

/// One slave's share: sum of Eq. 4 terms for i in [first, last).
double pi_partial_sum(std::uint64_t first, std::uint64_t last, std::uint64_t terms);

class PiMasterIp final : public IpCore {
public:
    /// With an empty `slave_tiles` the master broadcasts work assignments
    /// (it needs no placement knowledge); with a tile list it addresses
    /// each task's assignment to that tile directly, which lets the
    /// spread-stop optimisation of Sec. 3.2.2 kill the rumor on delivery.
    PiMasterIp(std::size_t slave_count, std::uint64_t terms,
               std::vector<TileId> slave_tiles = {});

    void on_start(TileContext& ctx) override;
    void on_message(const Message& message, TileContext& ctx) override;

    bool done() const { return done_; }
    /// Assembled value (only meaningful once done()).
    double pi() const;
    std::optional<Round> completion_round() const { return completion_round_; }

private:
    std::size_t slave_count_;
    std::uint64_t terms_;
    std::vector<TileId> slave_tiles_;
    std::vector<bool> have_;
    std::vector<double> partials_;
    std::size_t received_{0};
    bool done_{false};
    std::optional<Round> completion_round_;
};

class PiSlaveIp final : public IpCore {
public:
    /// `task` in [0, slave_count); replicas of the same task share it.
    PiSlaveIp(std::uint32_t task, TileId master_tile);

    void on_message(const Message& message, TileContext& ctx) override;

private:
    std::uint32_t task_;
    TileId master_;
    bool answered_{false};
};

/// Mapping of the Fig. 4-2 experiment onto a 5x5 mesh: master at the
/// centre (tile 12), 8 slaves on its ring; with `duplicate_slaves` each
/// slave gets a replica on the outer ring.
struct PiDeployment {
    TileId master_tile{12};
    std::size_t slave_count{8};
    std::uint64_t terms{100000};
    bool duplicate_slaves{false};
    /// Address work assignments to the primary slave tiles instead of
    /// broadcasting them (replicas then only cover the result path).
    bool direct_addressing{false};
};

/// Attach master + slaves to a network built on a 5x5 mesh.
/// Returns the master for result inspection (owned by the network).
PiMasterIp& deploy_pi(GossipNetwork& net, const PiDeployment& deployment);

/// The same communication as a backend-independent trace (for the bus /
/// XY baselines): phase 1 master->slaves work, phase 2 slaves->master sums.
TrafficTrace pi_trace(const PiDeployment& deployment);

} // namespace snoc::apps
