// Quickstart: the Producer - Consumer walkthrough of Sec. 3.2.1/Fig. 3-3.
//
// A producer on tile 6 streams items to a consumer on tile 12 of a 4x4
// NoC.  Neither knows where the other lives: the stochastic communication
// layer floods each item with probability p per port per round, CRC-checks
// every reception and suppresses duplicates.  We then repeat the run with
// a crashed tile and with heavy data upsets to show that nothing changes
// from the application's point of view.
//
// Usage: quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "apps/producer_consumer.hpp"

using namespace snoc;

namespace {

void run_and_report(const char* title, FaultScenario scenario,
                    std::uint64_t seed, bool crash_a_tile) {
    GossipConfig config;
    config.forward_p = 0.5; // forward on each port with probability 1/2
    config.default_ttl = 30;

    GossipNetwork net(Topology::mesh(4, 4), config, scenario, seed);
    // Thesis numbering is 1-based: tile "6" is index 5, tile "12" is 11.
    auto& consumer = apps::make_producer_consumer(net, /*producer=*/5,
                                                  /*consumer=*/11, /*items=*/4);
    if (crash_a_tile) {
        // Kill one tile that is neither producer nor consumer.
        for (TileId t = 0; t < 16; ++t)
            if (t != 6) net.protect(t);
        net.force_exact_tile_crashes(1);
    }

    const auto result =
        net.run_until([&consumer] { return consumer.complete(); }, 500);

    std::cout << "--- " << title << " ---\n";
    std::cout << "faults: " << scenario.describe() << "\n";
    if (crash_a_tile) std::cout << "tile 7 (index 6) crashed before round 0\n";
    std::cout << (result.completed ? "completed" : "DID NOT FINISH") << " after "
              << result.rounds << " rounds ("
              << result.elapsed_seconds * 1e6 << " us of simulated time)\n";
    std::cout << "items delivered: " << consumer.received_count() << "/4\n";
    std::cout << "packets transmitted: " << net.metrics().packets_sent
              << ", CRC drops: " << net.metrics().crc_drops
              << ", duplicates filtered: " << net.metrics().duplicates_ignored
              << "\n\n";
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

    std::cout << "On-chip stochastic communication - quickstart\n"
              << "4x4 NoC, producer on tile 6, consumer on tile 12 (Fig. 3-3)\n\n";

    run_and_report("healthy chip", FaultScenario::none(), seed, false);

    FaultScenario upsets;
    upsets.p_upset = 0.5; // every other packet scrambled in flight
    run_and_report("50% data upsets", upsets, seed, false);

    run_and_report("one crashed tile on the way", FaultScenario::none(), seed, true);

    std::cout << "The application code never mentioned routing, faults or\n"
                 "retransmissions: communication and computation are separate.\n";
    return 0;
}
