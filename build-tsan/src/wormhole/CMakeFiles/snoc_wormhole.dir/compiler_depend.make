# Empty compiler generated dependencies file for snoc_wormhole.
# This may be replaced when dependencies are built.
