#pragma once
#include "noc/a.hpp"
namespace snoc { struct B {}; }
