#include "noc/buffer.hpp"

#include <string>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

TEST(BoundedBuffer, StartsEmpty) {
    BoundedBuffer<int> b(4);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.capacity(), 4u);
    EXPECT_EQ(b.overflow_drops(), 0u);
}

TEST(BoundedBuffer, RejectsZeroCapacity) {
    EXPECT_THROW(BoundedBuffer<int>(0), ContractViolation);
}

TEST(BoundedBuffer, FifoOrder) {
    BoundedBuffer<int> b(8);
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.push(i));
    for (int i = 0; i < 5; ++i) EXPECT_EQ(b.pop(), i);
    EXPECT_TRUE(b.empty());
}

TEST(BoundedBuffer, OverflowDropsOldestFirst) {
    // Ch. 2: "the respective tile will lose some of the messages (the
    // oldest ones are dropped first)".
    BoundedBuffer<int> b(3);
    EXPECT_TRUE(b.push(1));
    EXPECT_TRUE(b.push(2));
    EXPECT_TRUE(b.push(3));
    EXPECT_FALSE(b.push(4)); // 1 is dropped
    EXPECT_EQ(b.overflow_drops(), 1u);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(b.pop(), 2);
    EXPECT_EQ(b.pop(), 3);
    EXPECT_EQ(b.pop(), 4);
}

TEST(BoundedBuffer, OverflowCounterAccumulates) {
    BoundedBuffer<int> b(1);
    b.push(0);
    for (int i = 1; i <= 10; ++i) b.push(i);
    EXPECT_EQ(b.overflow_drops(), 10u);
    EXPECT_EQ(b.front(), 10);
}

TEST(BoundedBuffer, PopOnEmptyThrows) {
    BoundedBuffer<int> b(2);
    EXPECT_THROW(b.pop(), ContractViolation);
    EXPECT_THROW(b.front(), ContractViolation);
}

TEST(BoundedBuffer, ClearKeepsCapacityAndCounter) {
    BoundedBuffer<int> b(2);
    b.push(1);
    b.push(2);
    b.push(3);
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.capacity(), 2u);
    EXPECT_EQ(b.overflow_drops(), 1u); // drops are a lifetime statistic
}

TEST(BoundedBuffer, IterationSeesFifoOrder) {
    BoundedBuffer<std::string> b(4);
    b.push("a");
    b.push("b");
    b.push("c");
    std::string joined;
    for (const auto& s : b) joined += s;
    EXPECT_EQ(joined, "abc");
}

TEST(BoundedBuffer, MoveOnlyValuesSupported) {
    BoundedBuffer<std::unique_ptr<int>> b(2);
    b.push(std::make_unique<int>(5));
    b.push(std::make_unique<int>(6));
    auto p = b.pop();
    EXPECT_EQ(*p, 5);
}

class BufferCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferCapacitySweep, NeverExceedsCapacity) {
    const std::size_t cap = GetParam();
    BoundedBuffer<std::size_t> b(cap);
    for (std::size_t i = 0; i < 3 * cap + 5; ++i) {
        b.push(i);
        EXPECT_LE(b.size(), cap);
    }
    EXPECT_EQ(b.size(), cap);
    EXPECT_EQ(b.overflow_drops(), 2 * cap + 5);
    // Survivors are exactly the newest `cap` items.
    EXPECT_EQ(b.front(), 2 * cap + 5);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferCapacitySweep,
                         ::testing::Values(1, 2, 3, 16, 100));

} // namespace
} // namespace snoc
