// Run-level counters: everything Sec. 3.3 declares relevant — rounds
// (latency), packets sent (bandwidth / energy via Eq. 3), drop taxonomy
// (fault-tolerance), plus the per-round spread curve used by Fig. 3-1.
#pragma once

#include <cstddef>
#include <vector>

namespace snoc {

struct NetworkMetrics {
    std::size_t rounds{0};            ///< rounds executed.
    std::size_t packets_sent{0};      ///< total link transmissions.
    std::size_t bits_sent{0};         ///< exact wire bits (for Eq. 3).
    std::size_t messages_created{0};  ///< unique messages injected by IPs.
    std::size_t deliveries{0};        ///< first-time deliveries to destination IPs.
    std::size_t duplicates_ignored{0};///< re-received known messages.
    std::size_t crc_drops{0};         ///< packets discarded by CRC check.
    std::size_t upsets_undetected{0}; ///< corrupted packets the CRC missed.
    std::size_t overflow_drops{0};    ///< forced p_overflow + capacity drops.
    std::size_t ttl_expired{0};       ///< messages garbage-collected at TTL 0.
    // Conservation-ledger taxonomy (see check/ledger.hpp): these three
    // complete the per-copy fate accounting so the InvariantAuditor can
    // verify injected == delivered + dropped(...) + in-flight exactly.
    std::size_t crash_drops{0};         ///< transmissions sunk into dead tiles.
    std::size_t port_overflow_drops{0}; ///< the receive-side slice of
                                        ///< overflow_drops (the rest are
                                        ///< send-buffer evictions).
    std::size_t packets_accepted{0};    ///< wire copies merged into a send
                                        ///< buffer (non-duplicate receives).
    std::size_t skew_deferrals{0};    ///< arrivals pushed a round by clock skew.
    std::size_t fec_corrected{0};     ///< SECDED words repaired at receivers.
    std::size_t fec_uncorrectable{0}; ///< packets lost to multi-bit upsets.

    /// packets sent in each round (index = round).
    std::vector<std::size_t> packets_per_round;

    /// wire bits transmitted by each tile (index = tile) — lets island-
    /// aware energy models weight traffic by the sender's supply voltage.
    std::vector<std::size_t> bits_sent_by_tile;

    /// packets carried by each directed link (index = LinkId).  Sec. 3.3.1:
    /// "This protocol spreads the traffic onto all the links in the
    /// network, thereby reducing the chances that packets are delayed
    /// because of congestion" — this is the evidence.
    std::vector<std::size_t> packets_by_link;

    /// Max-to-mean ratio of per-link traffic (1 = perfectly even).
    double link_hotspot_factor() const {
        if (packets_by_link.empty() || packets_sent == 0) return 0.0;
        std::size_t max = 0;
        for (auto n : packets_by_link) max = n > max ? n : max;
        const double mean = static_cast<double>(packets_sent) /
                            static_cast<double>(packets_by_link.size());
        return mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
    }

    /// Average packets per link per round — the N_packets/round of Eq. 2.
    double packets_per_link_round(std::size_t live_links) const {
        if (rounds == 0 || live_links == 0) return 0.0;
        return static_cast<double>(packets_sent) /
               (static_cast<double>(rounds) * static_cast<double>(live_links));
    }

    /// Average packet size S in bits (Eq. 2 / Eq. 3).
    double average_packet_bits() const {
        if (packets_sent == 0) return 0.0;
        return static_cast<double>(bits_sent) / static_cast<double>(packets_sent);
    }
};

} // namespace snoc
