// Figure 4-4: latency [rounds] and energy dissipation [J/useful bit] of
// stochastic communication for the two case studies (2-D FFT on 4x4,
// Master-Slave on 5x5), as a function of the number of tile crash
// failures, for p in {1 (flooding), 0.75, 0.5, 0.25}.
//
// Expected shapes (thesis):
//  * latency: flooding ~4 rounds; p=0.5 in 5-9 rounds; p=0.25 slowest;
//    nearly flat in the number of crashed tiles;
//  * energy: proportional to p (p=0.5 burns about half of flooding);
//    Master-Slave (5x5) burns more than FFT (4x4) because energy scales
//    with network size.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 12);
    const std::vector<double> kPs{1.0, 0.75, 0.5, 0.25};
    const std::vector<double> kCrashes{0, 1, 2, 3, 4};

    const auto pi_useful = apps::pi_trace(apps::PiDeployment{}).useful_bits();
    const auto fft_useful = apps::fft2d_trace(apps::FftDeployment{}).useful_bits();

    for (const bool is_fft : {true, false}) {
        ExperimentSpec spec;
        spec.name = is_fft ? "fig4_4 fft" : "fig4_4 pi";
        spec.axes = {{"crashes", kCrashes}, {"p", kPs}};
        spec.repeats = opt.repeats;
        spec.base_seed = opt.seed;
        spec.jobs = opt.jobs;
        // The app passes share one flag set; tag their artifacts apart.
        spec.telemetry = bench::tag_telemetry(opt.telemetry, is_fft ? "_fft" : "_pi");
        spec.engine = bench::engine_select(opt);
        const EngineSelect engine = spec.engine;
        spec.traced_trial = [is_fft, engine](const SweepPoint& pt,
                                             std::uint64_t seed, TraceSink* sink) {
            const auto config = bench::config_with_p(pt.value("p"), 30);
            const auto crashes = static_cast<std::size_t>(pt.value("crashes"));
            return is_fft ? bench::run_fft_once(config, FaultScenario::none(),
                                                crashes, seed, 3000, nullptr, sink,
                                                engine)
                          : bench::run_pi_once(config, FaultScenario::none(),
                                               crashes, seed, true, 3000, false,
                                               nullptr, sink, engine);
        };
        const auto cells = ScenarioRunner(spec).run();

        Table latency({"tile crashes", "flooding (p=1)", "p=0.75", "p=0.5", "p=0.25"});
        Table energy({"tile crashes", "flooding (p=1)", "p=0.75", "p=0.5", "p=0.25"});
        for (std::size_t c = 0; c < kCrashes.size(); ++c) {
            std::vector<std::string> lat_row{
                std::to_string(static_cast<std::size_t>(kCrashes[c]))};
            std::vector<std::string> en_row = lat_row;
            for (std::size_t p = 0; p < kPs.size(); ++p) {
                const CellStats& avg = cells[c * kPs.size() + p].stats;
                lat_row.push_back(format_number(avg.rounds, 1));
                en_row.push_back(format_sci(
                    bench::joules_per_useful_bit(avg.bits,
                                                 is_fft ? fft_useful : pi_useful),
                    2));
            }
            latency.add_row(lat_row);
            energy.add_row(en_row);
        }
        const std::string app = is_fft ? "FFT2 (4x4)" : "Master-Slave (5x5)";
        bench::emit(latency, opt, "Fig. 4-4 latency [rounds] - " + app);
        bench::emit(energy, opt, "Fig. 4-4 energy [J/useful bit] - " + app);
    }
    return 0;
}
