// Static deadlock/livelock verification suite (label `verify`): the CDG
// analysis engine, the registry verdict sweep (golden-checked so a new
// BackendKind/PolicyKind cannot ship without a verdict), the
// deliberately-broken probes, and the DeadlockSentinel cross-check that
// the static verdicts and the runtime watchdog agree on what a deadlock
// is.
//
// Regenerating the verdict golden (legitimate only when the registry or
// the analysis deliberately changed):
//   SNOC_UPDATE_GOLDEN=1 build/tests/test_verify
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/cdg.hpp"
#include "analysis/probes.hpp"
#include "analysis/verify.hpp"
#include "common/expect.hpp"
#include "router/ports.hpp"
#include "sim/backends.hpp"

namespace snoc::analysis {
namespace {

// --- CDG engine ----------------------------------------------------------

TEST(Cdg, XyAcyclicOnEveryVerifiedMesh) {
    const auto policy = router::make_policy(router::PolicyKind::DimensionOrder);
    for (const MeshShape& m : verified_meshes()) {
        const Topology topo = Topology::mesh(m.width, m.height);
        const CdgResult r = analyze_cdg(topo, *policy);
        EXPECT_TRUE(r.acyclic()) << m.width << 'x' << m.height << ": "
                                 << cycle_to_string(topo, r.cycle);
        // XY uses every channel of the mesh and the analysis must see that.
        EXPECT_EQ(r.reachable, topo.link_count());
        EXPECT_GT(r.dependencies, 0u);
    }
}

TEST(Cdg, WestFirstAcyclicOnEveryVerifiedMesh) {
    const auto policy = router::make_policy(router::PolicyKind::WestFirst);
    for (const MeshShape& m : verified_meshes()) {
        const Topology topo = Topology::mesh(m.width, m.height);
        const CdgResult r = analyze_cdg(topo, *policy);
        EXPECT_TRUE(r.acyclic()) << m.width << 'x' << m.height << ": "
                                 << cycle_to_string(topo, r.cycle);
    }
}

// West-first offers more turns than XY (the adaptive non-west choices),
// so its dependency relation must be a strict superset in size — if the
// analysis reported otherwise it would be inventing or dropping edges.
TEST(Cdg, WestFirstHasMoreDependenciesThanXy) {
    const Topology topo = Topology::mesh(5, 5);
    const CdgResult xy =
        analyze_cdg(topo, *router::make_policy(router::PolicyKind::DimensionOrder));
    const CdgResult wf =
        analyze_cdg(topo, *router::make_policy(router::PolicyKind::WestFirst));
    EXPECT_GT(wf.dependencies, xy.dependencies);
}

TEST(Cdg, CyclicTurnPolicyYieldsConcreteCycle) {
    const Topology topo = Topology::mesh(2, 2);
    const CdgResult r = analyze_cdg(topo, CyclicTurnPolicy{});
    ASSERT_FALSE(r.acyclic());
    // Witness validity: consecutive channels chain head-to-tail and the
    // last one feeds the first — a closed walk a packet could block on.
    ASSERT_GE(r.cycle.size(), 2u);
    for (std::size_t i = 0; i < r.cycle.size(); ++i) {
        const LinkEnd& cur = topo.link(r.cycle[i]);
        const LinkEnd& nxt = topo.link(r.cycle[(i + 1) % r.cycle.size()]);
        EXPECT_EQ(cur.to, nxt.from) << "witness breaks at channel " << i;
    }
    // On the 2x2 mesh the only cycle is the full 4-channel ring.
    EXPECT_EQ(r.cycle.size(), 4u);
    EXPECT_EQ(cycle_to_string(topo, r.cycle),
              "(0,0)->(1,0)->(1,1)->(0,1)->(0,0)");
}

// A policy that actually uses wrap-around links closes a ring cycle on a
// torus — the canonical Dally-Seitz example, and proof the analysis is
// seeing real channel structure rather than rubber-stamping meshes.
class RingEastPolicy final : public router::RoutingPolicy {
public:
    router::PolicyKind kind() const override {
        return router::PolicyKind::DimensionOrder;
    }
    std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const override {
        (void)from;
        (void)dead;
        std::vector<std::size_t> out;
        if (at == dst) return out;
        const std::size_t x = topo.x_of(at), y = topo.y_of(at);
        const TileId east = topo.at((x + 1) % topo.width(), y);
        if (const auto p = router::port_to(topo, at, east)) out.push_back(*p);
        return out;
    }
};

TEST(Cdg, RingRoutingOnTorusIsDeadlockCapable) {
    const Topology torus = Topology::torus(4, 2);
    const CdgResult r = analyze_cdg(torus, RingEastPolicy{});
    ASSERT_FALSE(r.acyclic());
    EXPECT_EQ(r.cycle.size(), 4u) << cycle_to_string(torus, r.cycle);
}

TEST(Cdg, DeadTilesDropOutOfTheGraph) {
    const Topology topo = Topology::mesh(3, 3);
    std::vector<bool> dead(topo.node_count(), false);
    dead[4] = true; // the centre tile.
    const CdgResult whole = analyze_cdg(topo, CyclicTurnPolicy{});
    const CdgResult holed = analyze_cdg(topo, CyclicTurnPolicy{}, dead);
    EXPECT_LT(holed.channels, whole.channels);
    // The broken turn set still closes a perimeter cycle around the hole.
    EXPECT_FALSE(holed.acyclic());
}

TEST(Cdg, TarjanSccMatchesHandComputedComponents) {
    // 0->1->2->0 (one SCC), 3->4 (none), 5 self-contained.
    const std::vector<std::vector<std::size_t>> adj{
        {1}, {2}, {0}, {4}, {}, {}};
    const auto sccs = strongly_connected_components(adj);
    ASSERT_EQ(sccs.size(), 1u);
    EXPECT_EQ(sccs[0], (std::vector<std::size_t>{0, 1, 2}));
}

// --- Verdict model -------------------------------------------------------

TEST(Verdict, ObligationsCoverEveryRegisteredPolicy) {
    for (std::size_t p = 0; p < router::kPolicyKinds; ++p) {
        const auto kind = static_cast<router::PolicyKind>(p);
        // Must not throw: a new PolicyKind needs an obligation before it
        // can ship (plus the -Wswitch complaint in obligation_for itself).
        EXPECT_NO_THROW((void)obligation_for(kind)) << router::to_string(kind);
    }
    EXPECT_EQ(obligation_for(router::PolicyKind::DimensionOrder),
              PolicyObligation::AcyclicCdg);
    EXPECT_EQ(obligation_for(router::PolicyKind::Productive),
              PolicyObligation::BoundedMisroute);
}

TEST(Verdict, MisroutePoliciesRequireAFiniteBudget) {
    const MeshShape mesh{5, 5};
    const ConfigVerdict bounded = verify_policy(
        router::PolicyKind::FaultAdaptive, mesh, router::FlowControl::CutThrough,
        router::RouterConfig{}.max_hops);
    EXPECT_EQ(bounded.verdict, Verdict::LivelockBounded);
    EXPECT_NE(bounded.detail.find("hop budget=256"), std::string::npos);

    const ConfigVerdict unbounded = verify_policy(
        router::PolicyKind::FaultAdaptive, mesh, router::FlowControl::CutThrough,
        unbounded_deflection_budget());
    EXPECT_EQ(unbounded.verdict, Verdict::LivelockUnbounded);
    EXPECT_FALSE(verdict_ok(unbounded.verdict));
}

TEST(Verdict, EveryBackendKindGetsAnAcceptableVerdict) {
    for (const BackendKind kind : kBackendKinds) {
        const ConfigVerdict v = verify_backend(kind);
        EXPECT_TRUE(verdict_ok(v.verdict))
            << v.subject << ": " << to_string(v.verdict) << " [" << v.detail
            << "]";
        EXPECT_EQ(v.subject, std::string("backend ") + to_string(kind));
        EXPECT_FALSE(v.detail.empty()) << v.subject << " verdict lacks evidence";
    }
}

TEST(Verdict, RegistrySweepCoversEveryPolicyMeshFlowCell) {
    const auto verdicts = verify_registry();
    const std::size_t policy_cells = router::kPolicyKinds *
                                     verified_meshes().size() *
                                     std::size(router::kFlowControlNames);
    EXPECT_EQ(verdicts.size(), policy_cells + std::size(kBackendKinds));
    for (const ConfigVerdict& v : verdicts)
        EXPECT_TRUE(verdict_ok(v.verdict))
            << v.subject << ": " << to_string(v.verdict) << " [" << v.detail
            << "]";
}

// The registry verdict table is golden-checked byte-for-byte: growing
// SNOC_BACKEND_KIND_LIST or SNOC_ROUTING_POLICY_LIST without extending
// the verification plan changes these bytes and fails here.
TEST(Verdict, RegistryReportMatchesGolden) {
    const std::string path =
        std::string(SNOC_GOLDEN_DIR) + "/verify_registry.golden";
    std::ostringstream os;
    write_report(verify_registry(), os);
    const std::string image = os.str();
    ASSERT_FALSE(image.empty());

    if (std::getenv("SNOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << image;
        GTEST_SKIP() << "golden updated: " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with SNOC_UPDATE_GOLDEN=1 to capture)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(image, golden.str())
        << "registry verdicts diverged — if a backend/policy was added or "
           "the analysis deliberately changed, regenerate the golden";
}

TEST(Verdict, SarifIsWellFormedAndEmptyForCleanRegistry) {
    std::ostringstream os;
    write_sarif(verify_registry(), os);
    const std::string sarif = os.str();
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"snoc_verify\""), std::string::npos);
    EXPECT_NE(sarif.find("\"results\": []"), std::string::npos)
        << "clean registry must produce an empty result set";
}

TEST(Verdict, SarifCarriesOneResultPerViolation) {
    std::ostringstream os;
    write_sarif(probe_verdicts("cyclic-turn"), os);
    const std::string sarif = os.str();
    EXPECT_NE(sarif.find("verify-deadlock"), std::string::npos);
    EXPECT_NE(sarif.find("deadlock-capable"), std::string::npos);
    EXPECT_EQ(sarif.find("\"results\": []"), std::string::npos);
}

TEST(Verdict, UnknownProbeNameIsAContractViolation) {
    EXPECT_THROW((void)probe_verdicts("no-such-probe"), ContractViolation);
}

// --- DeadlockSentinel (the dynamic half of the cross-check) --------------

TEST(Sentinel, CyclicPolicyWedgesAndTripsTheWatchdog) {
    const DynamicProbeResult r = probe_dynamic_deadlock();
    EXPECT_TRUE(r.wedged) << "ring traffic drained under the cyclic turn set";
    EXPECT_TRUE(r.sentinel_fired);
    EXPECT_GE(r.stalled_cycles, 64u);
    EXPECT_TRUE(r.control_drained)
        << "the XY control could not drain the same traffic";
    EXPECT_FALSE(r.control_sentinel)
        << "the sentinel fired on a statically-acyclic configuration";
}

TEST(Sentinel, FiringOnAVerifiedConfigIsAnInvariantViolation) {
    router::RouterConfig config;
    config.flits_per_packet = 1;
    config.buffer_packets = 1;
    config.max_hops = 4096;
    config.stall_limit = 32;
    config.expect_deadlock_free = true; // a lie, which must be caught.
    router::RouterCore core(Topology::mesh(2, 2), config,
                            std::make_unique<CyclicTurnPolicy>());
    for (std::size_t burst = 0; burst < 8; ++burst) {
        core.inject(0, 3, 64);
        core.inject(1, 2, 64);
        core.inject(3, 0, 64);
        core.inject(2, 1, 64);
    }
    EXPECT_THROW(core.run(4096), ContractViolation);
}

TEST(Sentinel, SilentOnADrainingRun) {
    router::RouterConfig config;
    config.expect_deadlock_free = true;
    router::RouterCore core(Topology::mesh(4, 4), config);
    for (TileId t = 1; t < 16; ++t) core.inject(t, 0, 128);
    core.run(10000);
    EXPECT_TRUE(core.idle());
    EXPECT_FALSE(core.sentinel_fired());
    EXPECT_EQ(core.stalled_cycles(), 0u);
}

TEST(Sentinel, AutoStallLimitScalesWithTheMesh) {
    const router::RouterConfig config;
    router::RouterCore small(Topology::mesh(2, 2), config);
    router::RouterCore large(Topology::mesh(8, 8), config);
    EXPECT_GT(large.stall_limit(), small.stall_limit());
    router::RouterConfig pinned;
    pinned.stall_limit = 99;
    router::RouterCore explicit_limit(Topology::mesh(4, 4), pinned);
    EXPECT_EQ(explicit_limit.stall_limit(), 99u);
}

} // namespace
} // namespace snoc::analysis
