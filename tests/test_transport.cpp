#include "core/transport.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace snoc {
namespace {

/// IP core that streams `count` numbered payloads reliably to `peer`.
class StreamSource final : public IpCore {
public:
    StreamSource(TileId peer, std::size_t count, ReliablePolicy policy = {})
        : sender_(peer, /*channel=*/1, policy), count_(count) {}

    void on_round(TileContext& ctx) override {
        if (sent_ < count_ && ctx.round() % 2 == 0) {
            std::vector<std::byte> payload{static_cast<std::byte>(sent_ & 0xFF),
                                           static_cast<std::byte>(0xCD)};
            sender_.send(ctx, std::move(payload));
            ++sent_;
        }
        sender_.on_round(ctx);
    }

    void on_message(const Message& m, TileContext& ctx) override {
        sender_.on_message(m, ctx);
    }

    const ReliableSender& sender() const { return sender_; }
    bool all_sent() const { return sent_ == count_; }

private:
    ReliableSender sender_;
    std::size_t count_;
    std::size_t sent_{0};
};

class StreamSink final : public IpCore {
public:
    explicit StreamSink(TileId peer)
        : receiver_(peer, /*channel=*/1, [this](std::uint32_t seq,
                                                std::vector<std::byte> payload) {
              sequences_.push_back(seq);
              payloads_.push_back(std::move(payload));
          }) {}

    void on_message(const Message& m, TileContext& ctx) override {
        receiver_.on_message(m, ctx);
    }

    const std::vector<std::uint32_t>& sequences() const { return sequences_; }
    const std::vector<std::vector<std::byte>>& payloads() const { return payloads_; }
    const ReliableReceiver& receiver() const { return receiver_; }

private:
    ReliableReceiver receiver_;
    std::vector<std::uint32_t> sequences_;
    std::vector<std::vector<std::byte>> payloads_;
};

struct Harness {
    GossipNetwork net;
    StreamSource* source;
    StreamSink* sink;

    Harness(GossipConfig config, FaultScenario scenario, std::uint64_t seed,
            std::size_t items, ReliablePolicy policy = {})
        : net(Topology::mesh(4, 4), config, scenario, seed) {
        auto src = std::make_unique<StreamSource>(15, items, policy);
        auto snk = std::make_unique<StreamSink>(0);
        source = src.get();
        sink = snk.get();
        net.attach(0, std::move(src));
        net.attach(15, std::move(snk));
    }

    bool run(std::size_t items, Round max_rounds) {
        const auto r = net.run_until(
            [this, items] {
                return sink->sequences().size() >= items && source->sender().idle();
            },
            max_rounds);
        return r.completed;
    }
};

GossipConfig lossy_config() {
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 8; // short TTL: raw gossip loses distant messages often
    return c;
}

TEST(ReliableTransport, InOrderExactlyOnceOnCleanChip) {
    Harness h(lossy_config(), FaultScenario::none(), 1, 10);
    ASSERT_TRUE(h.run(10, 2000));
    ASSERT_EQ(h.sink->sequences().size(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(h.sink->sequences()[i], i);
        EXPECT_EQ(h.sink->payloads()[i][0], static_cast<std::byte>(i));
    }
}

TEST(ReliableTransport, SurvivesHeavyUpsetsWhereRawGossipWouldNot) {
    FaultScenario s;
    s.p_upset = 0.7;
    Harness h(lossy_config(), s, 2, 10);
    ASSERT_TRUE(h.run(10, 4000));
    EXPECT_EQ(h.sink->sequences().size(), 10u);
    // The reliability came from actual retransmissions, not luck.
    EXPECT_GT(h.source->sender().retransmissions(), 0u);
}

TEST(ReliableTransport, SurvivesForcedOverflows) {
    FaultScenario s;
    s.p_overflow = 0.5;
    Harness h(lossy_config(), s, 3, 8);
    ASSERT_TRUE(h.run(8, 4000));
    EXPECT_EQ(h.sink->sequences().size(), 8u);
}

TEST(ReliableTransport, WindowLimitsInFlightSegments) {
    ReliablePolicy policy;
    policy.window = 2;
    policy.retransmit_after = 4;
    Harness h(lossy_config(), FaultScenario::none(), 4, 12, policy);
    // Step manually and observe the invariant.
    for (int i = 0; i < 200; ++i) {
        h.net.step();
        EXPECT_LE(h.source->sender().unacked(), 2u);
    }
    EXPECT_EQ(h.sink->sequences().size(), 12u);
}

TEST(ReliableTransport, IdleOnceEverythingAcked) {
    Harness h(lossy_config(), FaultScenario::none(), 5, 5);
    ASSERT_TRUE(h.run(5, 2000));
    EXPECT_TRUE(h.source->sender().idle());
    EXPECT_EQ(h.sink->receiver().expected(), 5u);
    EXPECT_EQ(h.sink->receiver().reorder_buffered(), 0u);
}

TEST(ReliableTransport, RetransmissionsStopAfterAck) {
    Harness h(lossy_config(), FaultScenario::none(), 6, 3);
    ASSERT_TRUE(h.run(3, 2000));
    const auto retransmissions = h.source->sender().retransmissions();
    for (int i = 0; i < 50; ++i) h.net.step();
    EXPECT_EQ(h.source->sender().retransmissions(), retransmissions);
}

TEST(ReliableTransport, PolicyValidation) {
    EXPECT_THROW(ReliableSender(0, 0, ReliablePolicy{0, 1, 0}), ContractViolation);
    EXPECT_THROW(ReliableSender(0, 0, ReliablePolicy{1, 0, 0}), ContractViolation);
    EXPECT_THROW(ReliableReceiver(0, 0, nullptr), ContractViolation);
}

class UpsetStress : public ::testing::TestWithParam<double> {};

TEST_P(UpsetStress, EventuallyDeliversEverything) {
    FaultScenario s;
    s.p_upset = GetParam();
    GossipConfig c = lossy_config();
    c.default_ttl = 10;
    Harness h(c, s, 7, 6);
    ASSERT_TRUE(h.run(6, 8000)) << "p_upset=" << GetParam();
    EXPECT_EQ(h.sink->sequences().size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Upsets, UpsetStress, ::testing::Values(0.0, 0.3, 0.6, 0.8));

} // namespace
} // namespace snoc
