// Query engine over a JSONL trace dump — the brains of the snoc_trace
// CLI, kept in the library so tests can drive it without spawning a
// process.  Loads the line format written by write_jsonl and answers:
// per-run summary, per-round table, a single message's lifeline, top-K
// lossiest tiles/links, and the kind histogram.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace snoc::tracequery {

/// The header line of a `*.postmortem.jsonl` bundle (flight_recorder.hpp's
/// write_postmortem_bundle): why the trial died and what the recorder had
/// retained.  Every field after the header line is an ordinary trace
/// event, so the whole query surface below works on bundles unchanged.
struct PostmortemHeader {
    std::string reason;     ///< detector kind ("SNOC_ENSURE", "deadlock-sentinel", ...).
    std::string detail;     ///< detector-formatted what() text.
    std::string experiment; ///< sweep cell label or experiment name.
    std::string backend;
    std::uint64_t seed{0};
    std::size_t events{0};             ///< events retained in the bundle.
    std::size_t events_overwritten{0}; ///< older events the ring dropped.
    Round first_round{0};
    Round last_round{0};
};

struct LoadResult {
    std::vector<TraceEvent> events;
    std::size_t skipped{0}; ///< malformed / unknown-kind lines ignored.
    /// Set when the dump is a post-mortem bundle (its first line carries
    /// the "postmortem":1 marker); plain write_jsonl dumps leave it empty.
    std::optional<PostmortemHeader> postmortem;
};

LoadResult load_jsonl(std::istream& is);
LoadResult load_jsonl_file(const std::string& path);

/// Events from `round` onwards (--since-round).
std::vector<TraceEvent> since_round(const std::vector<TraceEvent>& events,
                                    Round round);
/// Events of the `n` highest rounds present (--last-rounds): the tail a
/// post-mortem reader actually wants.  n = 0 returns nothing.
std::vector<TraceEvent> last_rounds(const std::vector<TraceEvent>& events,
                                    std::size_t n);

/// Human-readable rendering of a bundle header ("header" command).
std::string header_summary(const PostmortemHeader& header);

/// "5:12" -> MessageId{5, 12}; nullopt on malformed input.
std::optional<MessageId> parse_message_id(std::string_view text);

/// Kind histogram plus headline totals (events, rounds, tiles, messages,
/// deliveries, drops) — the counters mirror NetworkMetrics.
std::string summary(const std::vector<TraceEvent>& events);

/// One line per round: each kind's count that round.
std::string per_round(const std::vector<TraceEvent>& events);

/// Every event touching one message, in order — its lifeline.
std::string lifeline(const std::vector<TraceEvent>& events, MessageId id);

/// Tiles ranked by drops sunk at them (crash, overflow, CRC, FEC,
/// eviction); ties broken by tile id.
std::string top_tiles(const std::vector<TraceEvent>& events, std::size_t k);

/// Directed links ranked by transmissions carried; ties by (from, to).
std::string top_links(const std::vector<TraceEvent>& events, std::size_t k);

} // namespace snoc::tracequery
