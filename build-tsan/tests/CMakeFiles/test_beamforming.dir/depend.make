# Empty dependencies file for test_beamforming.
# This may be replaced when dependencies are built.
