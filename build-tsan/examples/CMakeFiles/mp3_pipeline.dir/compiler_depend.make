# Empty compiler generated dependencies file for mp3_pipeline.
# This may be replaced when dependencies are built.
