file(REMOVE_RECURSE
  "CMakeFiles/test_mp3_decoder.dir/test_mp3_decoder.cpp.o"
  "CMakeFiles/test_mp3_decoder.dir/test_mp3_decoder.cpp.o.d"
  "test_mp3_decoder"
  "test_mp3_decoder.pdb"
  "test_mp3_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp3_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
