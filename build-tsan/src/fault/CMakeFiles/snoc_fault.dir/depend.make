# Empty dependencies file for snoc_fault.
# This may be replaced when dependencies are built.
