# snoc_lint: project-wide static analysis for the simulator.
#
# Run as a directory (`python3 tools/snoc_lint`) or import the modules
# directly (scripts/lint_determinism.py does, for backward compatibility).
# See tools/snoc_lint/__main__.py for the CLI and DESIGN.md §11 for the
# architecture and the how-to-add-a-checker recipe.
