#include "bus/deflection.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc::deflection {
namespace {

CrashState crashes_none(std::size_t tiles, std::size_t links) {
    CrashState s;
    s.dead_tiles.assign(tiles, false);
    s.dead_links.assign(links, false);
    return s;
}

TEST(Deflection, SinglePacketTakesShortestPathWhenAlone) {
    Network net(4, 4, Config{}, 1);
    net.inject(0, 15);
    net.run(100);
    ASSERT_EQ(net.delivered(), 1u);
    EXPECT_EQ(net.hop_counts().mean(), 6.0); // no contention: no deflection
    EXPECT_EQ(net.latencies().mean(), 6.0);
}

TEST(Deflection, AdjacentDeliveryInOneCycle) {
    Network net(4, 4, Config{}, 2);
    net.inject(5, 6);
    net.run(10);
    EXPECT_EQ(net.delivered(), 1u);
    EXPECT_EQ(net.latencies().mean(), 1.0);
}

TEST(Deflection, ContentionCausesDeflections) {
    Network net(4, 4, Config{}, 3);
    // Many packets through the same column create contention.
    for (int i = 0; i < 12; ++i) net.inject(0, 12);
    for (int i = 0; i < 12; ++i) net.inject(3, 15);
    net.run(500);
    EXPECT_EQ(net.delivered(), 24u);
    // Some packet needed more hops than its Manhattan distance.
    EXPECT_GT(net.hop_counts().max(), 3.0);
}

TEST(Deflection, RoutesAroundDeadRouter) {
    const auto topo = Topology::mesh(4, 4);
    auto crashes = crashes_none(16, topo.link_count());
    crashes.dead_tiles[5] = true;
    crashes.dead_tiles[6] = true; // the whole XY path 4 -> 7 blocked
    Network net(4, 4, Config{}, 4);
    net.apply_crashes(crashes);
    net.inject(4, 7);
    net.run(300);
    EXPECT_EQ(net.delivered(), 1u); // deflected around the corpses
    EXPECT_GT(net.hop_counts().mean(), 3.0);
}

TEST(Deflection, HopBudgetGuardsAgainstLivelock) {
    const auto topo = Topology::mesh(3, 3);
    auto crashes = crashes_none(9, topo.link_count());
    // Wall off the destination completely: 4's neighbours all dead except
    // none — kill 1, 3, 5, 7 so the centre is unreachable.
    for (TileId t : {1u, 3u, 5u, 7u}) crashes.dead_tiles[t] = true;
    Network net(3, 3, Config{64}, 5);
    net.apply_crashes(crashes);
    net.inject(0, 4);
    net.run(1000);
    EXPECT_EQ(net.delivered(), 0u);
    EXPECT_EQ(net.dropped(), 1u);
    EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Deflection, AllToOneEventuallyDrains) {
    Network net(5, 5, Config{512}, 6);
    for (TileId t = 1; t < 25; ++t) net.inject(t, 0);
    net.run(3000);
    EXPECT_EQ(net.delivered() + net.dropped(), 24u);
    EXPECT_GE(net.delivered(), 20u);
}

TEST(Deflection, InjectionValidation) {
    Network net(4, 4, Config{}, 7);
    EXPECT_THROW(net.inject(3, 3), ContractViolation);
    const auto topo = Topology::mesh(4, 4);
    auto crashes = crashes_none(16, topo.link_count());
    crashes.dead_tiles[2] = true;
    net.apply_crashes(crashes);
    EXPECT_THROW(net.inject(2, 5), ContractViolation);
}

} // namespace
} // namespace snoc::deflection
