file(REMOVE_RECURSE
  "CMakeFiles/diversity_explorer.dir/diversity_explorer.cpp.o"
  "CMakeFiles/diversity_explorer.dir/diversity_explorer.cpp.o.d"
  "diversity_explorer"
  "diversity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
