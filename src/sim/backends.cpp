#include "sim/backends.hpp"

#include <algorithm>
#include <unordered_map>

#include "apps/trace_app.hpp"
#include "check/invariant_auditor.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "telemetry/prof.hpp"

namespace snoc {

// --- Gossip ---------------------------------------------------------------

GossipAdapter::GossipAdapter(GossipSpec spec, const FaultScenario& scenario,
                             std::uint64_t seed)
    : spec_(std::move(spec)),
      net_(spec_.topology, spec_.config, scenario, seed, spec_.engine),
      seed_(seed) {
    for (TileId t : spec_.protect) net_.protect(t);
    if (spec_.exact_tile_crashes) net_.force_exact_tile_crashes(*spec_.exact_tile_crashes);
    if (spec_.customize) spec_.customize(net_);
}

RunReport GossipAdapter::run_until(const std::function<bool()>& done, Round limit) {
    RunReport report;
    report.seed = seed_;
    // Don't clobber a sink the spec's customize hook may have attached
    // directly on the engine.
    if (trace_sink()) net_.set_trace_sink(trace_sink());
    check::InvariantAuditor* aud = auditor();
    const std::size_t audit_before = aud ? aud->violation_count() : 0;
    if (aud) aud->begin_run("gossip seed=" + std::to_string(seed_));
    // The auditor piggybacks on the completion predicate, which the engine
    // evaluates at every round boundary — exactly where the conservation
    // ledger is exact.
    const auto r = aud ? net_.run_until(
                             [&] {
                                 SNOC_PROF("engine/audit");
                                 aud->check_round(net_);
                                 return done();
                             },
                             limit)
                       : net_.run_until(done, limit);
    report.completed = r.completed;
    report.rounds = r.rounds;
    report.seconds = r.elapsed_seconds;
    if (spec_.drain) net_.drain();
    const NetworkMetrics& m = net_.metrics();
    report.transmissions = m.packets_sent;
    report.bits = m.bits_sent;
    report.messages = m.messages_created;
    report.deliveries = m.deliveries;
    report.dropped = m.ttl_expired;
    report.joules = static_cast<double>(m.bits_sent) * spec_.tech.link_ebit_joules;
    report.metrics = m;
    if (aud) {
        SNOC_PROF("engine/audit");
        aud->check_final(net_);
        aud->check_report(report, kind());
        report.audit_violations = aud->violation_count() - audit_before;
    }
    // End-of-run conservation self-audit, auditor or not.
    SNOC_CHECK(1, net_.ledger().balanced());
    return report;
}

RunReport GossipAdapter::run(const TrafficTrace& trace, Round limit) {
    check::InvariantAuditor* aud = auditor();
    const std::size_t audit_before = aud ? aud->violation_count() : 0;
    apps::TraceDriver driver(net_, trace);
    RunReport report =
        run_until([&driver] { return driver.complete(); }, limit);
    // Logical (trace-level) delivery view: the gossip metrics count
    // per-tile deliveries including broadcasts; the trace counts each
    // logical message once.
    report.messages = trace.message_count();
    report.deliveries = driver.delivered_messages();
    report.dropped = report.messages - std::min(report.deliveries, report.messages);
    SNOC_CHECK(1, report.deliveries <= report.messages);
    SNOC_CHECK(1, report.deliveries + report.dropped == report.messages);
    if (aud) {
        aud->check_report(report, kind(), &trace, limit);
        report.audit_violations = aud->violation_count() - audit_before;
    }
    return report;
}

// --- Bus ------------------------------------------------------------------

BusAdapter::BusAdapter(BusSpec spec, const FaultScenario& scenario,
                       std::uint64_t seed)
    : spec_(spec), bus_(spec.modules, spec.tech), seed_(seed) {
    // The entire medium is one link: a link-crash roll kills the bus.
    if (scenario.p_links > 0.0) {
        RngPool pool(seed);
        auto rng = pool.stream("bus-crash");
        if (rng.bernoulli(scenario.p_links)) bus_.crash();
    }
}

RunReport BusAdapter::run(const TrafficTrace& trace, Round limit) {
    bus_.set_trace_sink(trace_sink());
    const BusRunResult r = bus_.run(trace);
    RunReport report;
    report.seed = seed_;
    report.completed = r.completed;
    report.seconds = r.seconds;
    report.transmissions = r.transfers;
    report.bits = r.bits;
    report.messages = trace.message_count();
    report.deliveries = r.completed ? r.transfers : 0;
    report.dropped = report.messages - report.deliveries;
    report.joules = r.joules;
    SNOC_CHECK(1, report.deliveries <= report.messages);
    SNOC_CHECK(1, report.deliveries + report.dropped == report.messages);
    if (auto* aud = auditor()) {
        const std::size_t audit_before = aud->violation_count();
        aud->begin_run("bus seed=" + std::to_string(seed_));
        aud->check_report(report, kind(), &trace, limit);
        report.audit_violations = aud->violation_count() - audit_before;
    }
    return report;
}

// --- XY -------------------------------------------------------------------

XyAdapter::XyAdapter(XySpec spec, const FaultScenario& scenario, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
    // Exactly the crash roll the hand-rolled benches performed.
    RngPool pool(seed);
    FaultInjector injector(scenario, pool);
    crashes_ = injector.roll_crashes(spec_.mesh, spec_.protect);
}

RunReport XyAdapter::run(const TrafficTrace& trace, Round limit) {
    const XyRunResult r = run_xy_trace(spec_.mesh, trace, crashes_, trace_sink());
    RunReport report;
    report.seed = seed_;
    report.completed = r.lost == 0;
    report.rounds = static_cast<Round>(r.rounds);
    report.transmissions = r.hops;
    report.bits = r.bits;
    report.messages = r.delivered + r.lost;
    report.deliveries = r.delivered;
    report.dropped = r.lost;
    // Eq. 2 shape: each round forwards one average-size packet per link.
    const double s_bits = r.hops > 0
                              ? static_cast<double>(r.bits) / static_cast<double>(r.hops)
                              : 0.0;
    report.seconds =
        static_cast<double>(r.rounds) * s_bits / spec_.tech.link_frequency_hz;
    report.joules = static_cast<double>(r.bits) * spec_.tech.link_ebit_joules;
    SNOC_CHECK(1, report.deliveries <= report.messages);
    SNOC_CHECK(1, report.deliveries + report.dropped == report.messages);
    if (auto* aud = auditor()) {
        const std::size_t audit_before = aud->violation_count();
        aud->begin_run("xy seed=" + std::to_string(seed_));
        // XY replays the whole trace analytically and does not honour a
        // round budget, so the budget check is skipped (limit = 0).
        aud->check_report(report, kind(), &trace, 0);
        report.audit_violations = aud->violation_count() - audit_before;
    }
    (void)limit;
    return report;
}

// --- Wormhole -------------------------------------------------------------

WormholeAdapter::WormholeAdapter(WormholeSpec spec, const FaultScenario& scenario,
                                 std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
    RngPool pool(seed);
    FaultInjector injector(scenario, pool);
    crashes_ =
        injector.roll_crashes(Topology::mesh(spec_.width, spec_.height), spec_.protect);
}

RunReport WormholeAdapter::run(const TrafficTrace& trace, Round limit) {
    wormhole::Network net(spec_.width, spec_.height, spec_.config);
    net.set_trace_sink(trace_sink());
    for (TileId t = 0; t < crashes_.dead_tiles.size(); ++t)
        if (crashes_.dead_tiles[t]) net.crash_router(t);

    RunReport report;
    report.seed = seed_;
    report.messages = trace.message_count();
    bool completed = true;
    for (const auto& phase : trace.phases) {
        std::size_t expected = net.delivered();
        for (const auto& m : phase.messages) {
            if (m.src == m.dst) {
                ++report.deliveries; // local, never enters the network.
                continue;
            }
            net.inject(m.src, m.dst);
            ++expected;
        }
        while (net.delivered() < expected && net.cycle() < limit) net.step();
        if (net.delivered() < expected) {
            completed = false; // a worm is blocked (or the budget is gone).
            break;
        }
    }
    report.completed = completed;
    report.rounds = static_cast<Round>(net.cycle());
    report.deliveries += net.delivered();
    report.dropped = report.messages - std::min(report.deliveries, report.messages);
    report.transmissions = net.flit_hops();
    const double flit_bits =
        spec_.packet_bits / static_cast<double>(spec_.config.flits_per_packet);
    report.bits = static_cast<std::size_t>(
        static_cast<double>(net.flit_hops()) * flit_bits);
    // One flit crosses a link per cycle; a cycle is one flit time.
    report.seconds = static_cast<double>(net.cycle()) * flit_bits /
                     spec_.tech.link_frequency_hz;
    report.joules = static_cast<double>(report.bits) * spec_.tech.link_ebit_joules;
    SNOC_CHECK(1, report.deliveries <= report.messages);
    SNOC_CHECK(1, report.deliveries + report.dropped == report.messages);
    if (auto* aud = auditor()) {
        const std::size_t audit_before = aud->violation_count();
        aud->begin_run("wormhole seed=" + std::to_string(seed_));
        aud->check_wormhole(net);
        aud->check_report(report, kind(), &trace, limit);
        report.audit_violations = aud->violation_count() - audit_before;
    }
    return report;
}

// --- Deflection -----------------------------------------------------------

DeflectionAdapter::DeflectionAdapter(DeflectionSpec spec,
                                     const FaultScenario& scenario,
                                     std::uint64_t seed)
    : spec_(std::move(spec)), scenario_(scenario), seed_(seed) {}

RunReport DeflectionAdapter::run(const TrafficTrace& trace, Round limit) {
    deflection::Network net(spec_.width, spec_.height, spec_.config, seed_);
    net.set_trace_sink(trace_sink());
    {
        RngPool pool(seed_);
        FaultInjector injector(scenario_, pool);
        net.apply_crashes(injector.roll_crashes(
            Topology::mesh(spec_.width, spec_.height), spec_.protect));
    }

    RunReport report;
    report.seed = seed_;
    report.messages = trace.message_count();
    std::unordered_map<std::uint32_t, std::size_t> bits_of; // packet id -> bits
    bool completed = true;
    for (const auto& phase : trace.phases) {
        for (const auto& m : phase.messages) {
            if (m.src == m.dst) {
                ++report.deliveries;
                continue;
            }
            bits_of[net.inject(m.src, m.dst)] = m.bits;
        }
        while (net.in_flight() > 0 && net.cycle() < limit) net.step();
        if (net.in_flight() > 0) {
            completed = false;
            break;
        }
    }
    for (const auto& rec : net.records()) {
        const auto it = bits_of.find(rec.id);
        const std::size_t bits = it != bits_of.end() ? it->second : 0;
        report.transmissions += rec.hops;
        report.bits += rec.hops * bits;
    }
    report.completed = completed && net.dropped() == 0;
    report.rounds = static_cast<Round>(net.cycle());
    report.deliveries += net.delivered();
    report.dropped = report.messages - std::min(report.deliveries, report.messages);
    const double s_bits =
        report.transmissions > 0
            ? static_cast<double>(report.bits) / static_cast<double>(report.transmissions)
            : 0.0;
    report.seconds =
        static_cast<double>(net.cycle()) * s_bits / spec_.tech.link_frequency_hz;
    report.joules = static_cast<double>(report.bits) * spec_.tech.link_ebit_joules;
    SNOC_CHECK(1, report.deliveries <= report.messages);
    SNOC_CHECK(1, report.deliveries + report.dropped == report.messages);
    if (auto* aud = auditor()) {
        const std::size_t audit_before = aud->violation_count();
        aud->begin_run("deflection seed=" + std::to_string(seed_));
        aud->check_deflection(net);
        aud->check_report(report, kind(), &trace, limit);
        report.audit_violations = aud->violation_count() - audit_before;
    }
    return report;
}

// --- Layered router core --------------------------------------------------

RouterAdapter::RouterAdapter(BackendKind kind, RouterSpec spec,
                             const FaultScenario& scenario, std::uint64_t seed)
    : kind_(kind), spec_(std::move(spec)), seed_(seed) {
    RngPool pool(seed);
    FaultInjector injector(scenario, pool);
    crashes_ =
        injector.roll_crashes(Topology::mesh(spec_.width, spec_.height), spec_.protect);
}

RunReport RouterAdapter::run(const TrafficTrace& trace, Round limit) {
    router::RouterCore core(Topology::mesh(spec_.width, spec_.height), spec_.config);
    core.set_trace_sink(trace_sink());
    core.apply_crashes(crashes_);
    live_metrics_ = &core.metrics();

    RunReport report;
    report.seed = seed_;
    report.messages = trace.message_count();
    bool completed = true;
    for (const auto& phase : trace.phases) {
        for (const auto& m : phase.messages) {
            if (m.src == m.dst) {
                ++report.deliveries; // local, never enters the network.
                continue;
            }
            // Zero-size trace messages fall back to the spec's packet
            // size so the bit accounting stays law-abiding.
            core.inject(m.src, m.dst,
                        m.bits > 0 ? m.bits
                                   : static_cast<std::size_t>(spec_.packet_bits));
        }
        while (!core.idle() && core.cycle() < limit) core.step();
        if (!core.idle()) {
            completed = false; // out of cycle budget.
            break;
        }
    }
    const NetworkMetrics& m = core.metrics();
    report.completed = completed && core.dropped() == 0;
    report.rounds = static_cast<Round>(core.cycle());
    report.deliveries += core.delivered();
    report.dropped = report.messages - std::min(report.deliveries, report.messages);
    report.transmissions = m.packets_sent;
    report.bits = m.bits_sent;
    // One flit crosses a link per cycle; a cycle is one flit time.
    const double flit_bits =
        spec_.packet_bits / static_cast<double>(spec_.config.flits_per_packet);
    report.seconds = static_cast<double>(core.cycle()) * flit_bits /
                     spec_.tech.link_frequency_hz;
    report.joules = static_cast<double>(report.bits) * spec_.tech.link_ebit_joules;
    report.metrics = m;
    SNOC_CHECK(1, report.deliveries <= report.messages);
    SNOC_CHECK(1, report.deliveries + report.dropped == report.messages);
    if (auto* aud = auditor()) {
        const std::size_t audit_before = aud->violation_count();
        aud->begin_run(std::string(to_string(kind_)) + " seed=" +
                       std::to_string(seed_));
        aud->check_router(core);
        aud->check_report(report, kind(), &trace, limit);
        report.audit_violations = aud->violation_count() - audit_before;
    }
    live_metrics_ = nullptr; // `core` dies with this frame.
    return report;
}

// --- Factory --------------------------------------------------------------

std::unique_ptr<Interconnect> make_interconnect(BackendKind kind,
                                                const FaultScenario& scenario,
                                                std::uint64_t seed) {
    switch (kind) {
#define SNOC_BACKEND_ADAPTER_CASE(name, adapter, spec)                         \
    case BackendKind::name:                                                    \
        return std::make_unique<adapter>(spec{}, scenario, seed);
        SNOC_BACKEND_ADAPTER_LIST(SNOC_BACKEND_ADAPTER_CASE)
#undef SNOC_BACKEND_ADAPTER_CASE
    }
    SNOC_ENSURE(false && "unknown backend kind");
    return nullptr;
}

} // namespace snoc
