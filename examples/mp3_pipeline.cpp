// The complex application of Sec. 4.2: an MP3-style encoder pipelined
// over six tiles of a 4x4 NoC (Fig. 4-7a), streaming synthetic audio.
//
// The example runs the pipeline healthy, then under combined buffer
// overflows + synchronisation errors in streaming mode, and prints the
// sustained output bit-rate — the Fig. 4-11 "graceful degradation" story.
//
// Usage: mp3_pipeline [seed]
#include <cstdlib>
#include <iostream>

#include "apps/mp3_app.hpp"
#include "common/table.hpp"

using namespace snoc;
using namespace snoc::apps;

namespace {

Mp3Config pipeline_config(Round skip_after) {
    Mp3Config c;
    c.frame_samples = 128;
    c.frame_count = 16;
    c.frame_interval = 3;
    c.band_count = 16;
    c.frame_budget_bits = 900;
    c.reservoir_capacity = 1800;
    c.skip_after_rounds = skip_after;
    return c;
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

    std::cout << "MP3-style encoder on a 4x4 stochastic NoC\n"
              << "stages: acquisition -> {psychoacoustic, MDCT} -> iterative\n"
              << "encoding -> bit reservoir -> output (Fig. 4-7a)\n\n";

    Table table({"scenario", "rounds", "frames out", "skipped",
                 "bit rate [bits/s]", "jitter [bits/s]"});

    struct Case {
        const char* name;
        FaultScenario scenario;
        Round skip_after;
    };
    FaultScenario overflow_sync;
    overflow_sync.p_overflow = 0.5;
    overflow_sync.sigma_synchr = 0.5;
    FaultScenario upsets;
    upsets.p_upset = 0.5;
    const Case cases[] = {
        {"healthy", FaultScenario::none(), 0},
        {"50% upsets", upsets, 0},
        {"50% overflow + 50% sync jitter (streaming)", overflow_sync, 25},
    };

    bool all_ok = true;
    for (const auto& c : cases) {
        GossipConfig config;
        config.forward_p = 0.75;
        config.default_ttl = 50;
        GossipNetwork net(Topology::mesh(4, 4), config, c.scenario, seed);
        const auto cfg = pipeline_config(c.skip_after);
        auto& output = deploy_mp3(net, cfg);
        const auto run =
            net.run_until([&output] { return output.complete(); }, 4000);
        all_ok = all_ok && run.completed;
        const auto report = bitrate_report(output, cfg, run.rounds,
                                           net.config().timing.round_seconds());
        table.add_row({c.name,
                       run.completed ? std::to_string(run.rounds) : "DNF",
                       std::to_string(output.frames_received()),
                       std::to_string(output.frames_skipped()),
                       format_sci(report.mean_bits_per_second, 2),
                       format_sci(report.jitter_bits_per_second, 2)});
    }
    table.print(std::cout);
    std::cout << "\nStreaming multimedia tolerates small losses as long as the\n"
                 "bit-rate stays steady - exactly the workload stochastic\n"
                 "communication is built for (Sec. 4.2.3).\n";
    return all_ok ? 0 : 1;
}
