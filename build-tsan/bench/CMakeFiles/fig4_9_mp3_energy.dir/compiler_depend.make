# Empty compiler generated dependencies file for fig4_9_mp3_energy.
# This may be replaced when dependencies are built.
