#include "apps/mp3_decoder.hpp"

#include <cmath>
#include <map>

#include "apps/bitstream.hpp"
#include "apps/mdct.hpp"
#include "apps/payload.hpp"
#include "apps/quantizer.hpp"
#include "common/expect.hpp"

namespace snoc::apps {

std::optional<DecodedFrame> decode_stream_chunk(std::span<const std::byte> chunk) {
    if (chunk.size() < 5) return std::nullopt;
    PayloadReader r(chunk);
    const auto outer_frame = r.get<std::uint32_t>();
    const auto marker = r.get<std::uint8_t>();
    if (marker != 0) return std::nullopt; // skip marker: frame was lost
    // Inner coded payload (as built by EncoderIp::try_encode).
    QuantizedFrame q;
    q.frame_index = r.get<std::uint32_t>();
    if (q.frame_index != outer_frame) return std::nullopt;
    q.global_gain = r.get_f32();
    const auto bands = r.get<std::uint32_t>();
    if (bands > 1024) return std::nullopt;
    q.band_scale.resize(bands);
    for (auto& s : q.band_scale) s = r.get_f32();
    const auto bits = r.get<std::uint32_t>();
    const auto line_count = r.get<std::uint32_t>();
    if (line_count > 1 << 20) return std::nullopt;
    std::vector<std::byte> packed;
    packed.reserve(r.remaining());
    while (!r.exhausted()) packed.push_back(r.get<std::byte>());
    if (packed.size() * 8 < bits) return std::nullopt;
    q.values = unpack_lines(packed, bits, line_count);

    DecodedFrame out;
    out.frame_index = q.frame_index;
    out.lines = dequantize(q);
    return out;
}

std::vector<double> decode_stream_to_pcm(
    const std::vector<std::vector<std::byte>>& chunks, std::size_t frame_samples,
    std::size_t frame_count) {
    SNOC_EXPECT(frame_samples > 0);
    std::map<std::uint32_t, std::vector<double>> frames;
    for (const auto& chunk : chunks) {
        auto decoded = decode_stream_chunk(chunk);
        if (decoded && decoded->lines.size() == frame_samples)
            frames.emplace(decoded->frame_index, std::move(decoded->lines));
    }

    const std::size_t n = frame_samples;
    Mdct mdct(n);
    std::vector<double> pcm(frame_count * n, 0.0);
    for (const auto& [index, lines] : frames) {
        if (index >= frame_count) continue;
        const auto chunk = mdct.inverse(lines);
        // Frame k's window covered samples [(k-1)n, (k+1)n); the leading
        // half of frame 0 lands in the zero history and is discarded.
        const auto base = static_cast<long>(index) * static_cast<long>(n) -
                          static_cast<long>(n);
        for (std::size_t i = 0; i < 2 * n; ++i) {
            const long s = base + static_cast<long>(i);
            if (s >= 0 && s < static_cast<long>(pcm.size()))
                pcm[static_cast<std::size_t>(s)] += chunk[i];
        }
    }
    return pcm;
}

double snr_db(const std::vector<double>& reference, const std::vector<double>& decoded,
              std::size_t first, std::size_t last) {
    SNOC_EXPECT(first < last);
    SNOC_EXPECT(last <= reference.size());
    SNOC_EXPECT(last <= decoded.size());
    double signal = 0.0, noise = 0.0;
    for (std::size_t i = first; i < last; ++i) {
        signal += reference[i] * reference[i];
        noise += (reference[i] - decoded[i]) * (reference[i] - decoded[i]);
    }
    if (noise <= 0.0) return 300.0;
    if (signal <= 0.0) return 0.0;
    return std::min(300.0, 10.0 * std::log10(signal / noise));
}

} // namespace snoc::apps
